"""The backend-neutral scheduling loop shared by every runtime.

The paper's on-line cycle (Section 4) — form ``Batch(j)`` from leftovers
plus new arrivals, evict hopeless deadlines, allocate ``Q_s(j)``, search
for a feasible partial schedule, deliver it at ``t_e = t_s + sigma_j`` —
is the same whether "time" is a virtual event clock (the simulator) or
the wall clock (the live TCP cluster).  What differs is only *how* the
environment answers a handful of questions: what is each processor's
current load, how does a schedule entry physically reach its processor,
and what happens to a task record when it expires.

:class:`PhaseDriver` owns everything backend-independent — admission,
expiry, quantum allocation, the feasibility search call, delivery-time
batch bookkeeping, guarantee accounting, and failure remap — and asks a
:class:`PhaseHooks` implementation (the concrete runtime) for the rest.
Both :class:`~repro.simulator.runtime.DistributedRuntime` and
:class:`~repro.cluster.master.ClusterMaster` are thin hook objects around
one driver instance.

Two admission styles are supported because the two time models need them:

* **event-driven** (:meth:`PhaseDriver.admit`): the simulator's engine
  delivers one ``TaskArrived`` event per task at exactly its arrival time;
* **time-driven** (:meth:`PhaseDriver.stage_arrivals` +
  the automatic :meth:`admit_due` inside :meth:`open_phase`): the live
  master polls a wall clock and admits everything whose arrival time has
  passed since the last poll.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Set

from ..core.batch import Batch
from ..core.scheduler import Scheduler
from ..core.task import Task


@dataclass
class PhaseTrace:
    """Summary of one scheduling phase, recorded by the driver.

    ``scheduled`` counts the entries the search placed; ``delivered``
    counts how many of those the backend actually accepted (a simulated
    processor may have crashed between phase start and delivery, a live
    dispatch may fail its wall-clock guarantee re-check).
    """

    index: int
    start: float
    quantum: float
    time_used: float
    batch_size: int
    scheduled: int
    expired_before: int
    dead_end: bool
    complete: bool
    max_depth: int
    processors_touched: int
    vertices_generated: int
    delivered: int = 0

    @property
    def end(self) -> float:
        """Phase end on the run's clock (virtual quanta on the simulator)."""
        return self.start + self.time_used


@dataclass
class OpenPhase:
    """An in-flight phase: search finished, schedule not yet delivered.

    The simulator holds one of these for the duration ``sigma_j`` between
    phase start and the ``ScheduleDelivered`` event; the live master
    delivers immediately.
    """

    result: object  # core.phase.PhaseResult
    index: int
    expired_before: int


class PhaseHooks:
    """What a concrete runtime must answer for the driver.

    Subclass (or duck-type) and override; :meth:`transform_batch` has an
    identity default because only runtimes with dynamic processor sets
    (the live cluster after worker loss) need it.
    """

    def loads(self, now: float) -> List[float]:
        """Current per-processor load ``Load_k`` in cost units.

        Return an empty list to signal *no capacity at all* (every live
        worker dead); the driver then skips the phase entirely.
        """
        raise NotImplementedError

    def transform_batch(
        self, tasks: List[Task], now: float
    ) -> List[Task]:
        """Map batch tasks into the scheduler's processor index space."""
        return tasks

    def deliver_entry(self, entry, phase_index: int, now: float) -> bool:
        """Physically deliver one schedule entry; True iff it was accepted.

        A declined entry (processor died mid-phase, dispatch-time
        guarantee re-check failed) is returned to the pending set by the
        driver and re-enters the batch at the next phase start.
        """
        raise NotImplementedError

    def on_task_expired(self, task: Task, now: float) -> None:
        """Record a task evicted because its deadline is already hopeless."""
        raise NotImplementedError


class PhaseDriver:
    """Runs the paper's phase loop over any :class:`PhaseHooks` backend."""

    def __init__(self, scheduler: Scheduler, hooks: PhaseHooks) -> None:
        self.scheduler = scheduler
        self.hooks = hooks
        self.batch = Batch()
        #: Phase summaries in completion order; shared by reference with
        #: the owning runtime's trace object where one exists.
        self.phases: List[PhaseTrace] = []
        self._pending: List[Task] = []
        self._arrivals: List[Task] = []
        self._next_arrival = 0
        self._open: Optional[OpenPhase] = None
        self._guaranteed_ids: Set[int] = set()
        self.reschedules = 0
        self.workers_lost = 0
        self.total_expired = 0

    # ----- admission --------------------------------------------------------

    def admit(self, tasks: Sequence[Task]) -> None:
        """Event-driven admission: tasks join the next batch formation."""
        self._pending.extend(tasks)

    def stage_arrivals(self, tasks: Sequence[Task]) -> None:
        """Time-driven admission: register the full future arrival stream."""
        self._arrivals = sorted(
            tasks, key=lambda t: (t.arrival_time, t.task_id)
        )
        self._next_arrival = 0

    def _admit_due(self, now: float) -> None:
        """Move every staged task whose arrival time has passed to pending."""
        while self._next_arrival < len(self._arrivals):
            task = self._arrivals[self._next_arrival]
            if task.arrival_time > now:
                break
            self._pending.append(task)
            self._next_arrival += 1

    def arrivals_exhausted(self) -> bool:
        """True once every staged arrival has been admitted to pending."""
        return self._next_arrival >= len(self._arrivals)

    # ----- guarantee accounting and failure remap ---------------------------

    @property
    def guaranteed_count(self) -> int:
        """Tasks delivered under a currently unrevoked guarantee."""
        return len(self._guaranteed_ids)

    def revoke(self, task_id: int) -> None:
        """Void one guarantee without requeueing (e.g. task died in flight)."""
        self._guaranteed_ids.discard(task_id)

    def worker_lost(self) -> None:
        """Count one fail-stopped worker (live cluster failure path)."""
        self.workers_lost += 1

    def withdraw(self, task_ids: Sequence[int]) -> List[Task]:
        """Shed admitted-but-undispatched tasks (service overload policies).

        Removes the named tasks from the pending set and the current batch
        and returns the :class:`~repro.core.task.Task` objects actually
        withdrawn.  Ids that are not waiting (already dispatched, expired,
        or unknown) are silently skipped — the caller decides what that
        means.  Withdrawn tasks carry no guarantee, so nothing is revoked.
        """
        wanted = set(task_ids)
        if not wanted:
            return []
        withdrawn: List[Task] = []
        kept: List[Task] = []
        for task in self._pending:
            if task.task_id in wanted:
                withdrawn.append(task)
            else:
                kept.append(task)
        self._pending = kept
        withdrawn.extend(self.batch.withdraw(wanted))
        return withdrawn

    def requeue(self, tasks: Sequence[Task]) -> None:
        """Return tasks to pending without touching failure accounting.

        The migration path's "declined offer falls back to surrender" —
        of the *decision*, not the guarantee: these tasks were never
        guaranteed here (they are exactly the ones the local search could
        not place), so unlike :meth:`surrender` nothing is revoked and no
        reschedule is counted.  They re-enter the batch at the next phase
        start like fresh arrivals.
        """
        self._pending.extend(tasks)

    def waiting_tasks(self) -> List[Task]:
        """Tasks admitted but not yet dispatched (batch + pending).

        The migration candidate set: after a delivered phase these are
        precisely the tasks the local feasibility search failed to place.
        Returns copies of the references in deterministic id order; use
        :meth:`withdraw` to actually remove one.
        """
        waiting = list(self.batch.tasks()) + list(self._pending)
        return sorted(waiting, key=lambda t: t.task_id)

    def surrender(self, tasks: Sequence[Task]) -> int:
        """Failure remap: requeue tasks whose processor was lost.

        Each task's guarantee is revoked — it must re-earn feasibility on
        the survivors through the normal phase path — and counted as a
        reschedule.  Returns how many tasks were requeued.
        """
        for task in tasks:
            self._guaranteed_ids.discard(task.task_id)
            self._pending.append(task)
        self.reschedules += len(tasks)
        return len(tasks)

    # ----- the phase loop ---------------------------------------------------

    def open_phase(self, now: float) -> Optional[OpenPhase]:
        """Form ``Batch(j)``, evict expired tasks, run the search.

        Returns ``None`` when there is nothing schedulable (empty batch
        after expiry, or the backend reports zero capacity); otherwise the
        in-flight phase to hand back to :meth:`deliver_phase`.
        """
        self._admit_due(now)
        if self._pending:
            self.batch.add_arrivals(self._pending)
            self._pending.clear()
        expired = self.batch.drop_expired(now)
        self.total_expired += len(expired)
        for task in expired:
            self.hooks.on_task_expired(task, now)
        if not self.batch:
            return None
        loads = self.hooks.loads(now)
        if not loads:
            return None  # no capacity; leftovers wait for the next phase
        batch_tasks = self.hooks.transform_batch(self.batch.edf_order(), now)
        quantum = self.scheduler.plan_quantum(batch_tasks, loads, now)
        result = self.scheduler.schedule_phase(
            batch_tasks, loads, now, quantum
        )
        opened = OpenPhase(
            result=result,
            index=self.batch.phase_index,
            expired_before=len(expired),
        )
        self._open = opened
        return opened

    def deliver_phase(self, opened: OpenPhase, now: float) -> PhaseTrace:
        """Deliver an open phase's schedule through the backend.

        Scheduled tasks leave the batch before delivery; entries the
        backend declines return to pending (not to the just-advanced
        batch), exactly like fresh arrivals — they re-enter at the next
        phase start and run back through the feasibility test.
        """
        result = opened.result
        self._open = None
        scheduled_ids = result.schedule.task_ids()
        if scheduled_ids:
            self.batch.remove_scheduled(scheduled_ids)
        self.batch.advance_phase()
        delivered = 0
        for entry in result.schedule:
            if self.hooks.deliver_entry(entry, opened.index, now):
                self._guaranteed_ids.add(entry.task.task_id)
                delivered += 1
            else:
                self._pending.append(entry.task)
        trace = PhaseTrace(
            index=opened.index,
            start=result.phase_start,
            quantum=result.quantum,
            time_used=result.time_used,
            # Batch(j) size at phase start: what was scheduled plus what
            # rolled over (pending arrivals merge only at phase start).
            batch_size=len(result.schedule) + len(self.batch),
            scheduled=len(result.schedule),
            expired_before=opened.expired_before,
            dead_end=result.stats.dead_end,
            complete=result.stats.complete,
            max_depth=result.stats.max_depth,
            processors_touched=result.stats.processors_touched,
            vertices_generated=result.stats.vertices_generated,
            delivered=delivered,
        )
        self.phases.append(trace)
        return trace

    def run_phase(self, now: float) -> Optional[PhaseTrace]:
        """Open and immediately deliver one phase (polling runtimes)."""
        opened = self.open_phase(now)
        if opened is None:
            return None
        return self.deliver_phase(opened, now)

    # ----- termination ------------------------------------------------------

    def has_backlog(self) -> bool:
        """Anything still owed a scheduling decision?"""
        return bool(
            self.batch
            or self._pending
            or self._open is not None
            or not self.arrivals_exhausted()
        )
