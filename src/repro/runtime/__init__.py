"""Backend-neutral runtime core: one phase loop, many execution backends.

This package is the seam between *what the paper's algorithm does* and
*where it runs*:

* :class:`PhaseDriver` — the shared on-line scheduling loop (admission,
  expiry, quantum allocation, feasibility search, delivery bookkeeping,
  guarantee accounting, failure remap), parameterized by
  :class:`PhaseHooks`;
* :class:`ExecutionBackend` + :func:`get_backend` — the registry through
  which experiments dispatch a cell to the simulator (``"sim"``), the
  live TCP cluster (``"cluster"``), or any backend registered later;
* :class:`RunReport` — the single report schema every backend produces.

The concrete backends (:mod:`repro.runtime.sim`,
:mod:`repro.runtime.live`) are deliberately *not* imported here: they
load lazily through :func:`get_backend` so simulation-only processes
never touch sockets or multiprocessing, and so the import graph stays
acyclic (the backends import the experiment builders, which import this
package).
"""

from .backend import (
    BACKEND_NAMES,
    ExecutionBackend,
    get_backend,
    register_backend,
)
from .driver import OpenPhase, PhaseDriver, PhaseHooks, PhaseTrace
from .report import ClusterReport, RunReport, SimulationResult

__all__ = [
    "BACKEND_NAMES",
    "ClusterReport",
    "ExecutionBackend",
    "OpenPhase",
    "PhaseDriver",
    "PhaseHooks",
    "PhaseTrace",
    "RunReport",
    "SimulationResult",
    "get_backend",
    "register_backend",
]
