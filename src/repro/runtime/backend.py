"""Execution backends: where a scheduled workload actually runs.

An :class:`ExecutionBackend` turns one ``(ExperimentConfig, scheduler,
seed)`` cell into a :class:`~repro.runtime.report.RunReport`.  Two ship
with the repo — ``"sim"`` (the virtual-clock discrete-event simulator)
and ``"cluster"`` (the live TCP master/worker system) — and the registry
is open: a future asyncio or process-pool backend registers a name and
every experiment, figure, and CLI flag can sweep it immediately.

Built-in backends load lazily: naming ``"cluster"`` must not drag socket
and multiprocessing machinery into simulation-only processes, and the
implementations import the experiment builders, which import this module.
"""

from __future__ import annotations

import importlib
from abc import ABC, abstractmethod
from typing import Callable, ClassVar, Dict, Optional, Union

from .report import RunReport

#: name -> module that registers it on import.
_BUILTIN_MODULES = {
    "sim": "repro.runtime.sim",
    "cluster": "repro.runtime.live",
    "service": "repro.runtime.service",
    "sharded": "repro.runtime.sharded",
}

#: The backends every installation has (CLI choices, config validation).
BACKEND_NAMES = tuple(_BUILTIN_MODULES)

_REGISTRY: Dict[str, Callable[[], "ExecutionBackend"]] = {}


class ExecutionBackend(ABC):
    """Runs one experiment cell somewhere and reports back uniformly."""

    #: Registry name; also stamped into every report's ``backend`` field.
    name: ClassVar[str] = ""

    @abstractmethod
    def run_once(
        self,
        config,
        scheduler_name: str,
        seed: int,
        *,
        evaluator=None,
        quantum_policy=None,
        validate_phases: bool = False,
        instrumentation=None,
    ) -> RunReport:
        """One full run of one cell with one seed.

        ``evaluator``/``quantum_policy`` are scheduler construction
        overrides (the ablation studies); backends that cannot honor them
        must raise rather than silently ignore them.
        """


def register_backend(
    name: str, factory: Callable[[], ExecutionBackend]
) -> None:
    """Register (or replace) a backend factory under ``name``."""
    if not name:
        raise ValueError("backend name must be a non-empty string")
    _REGISTRY[name] = factory


def get_backend(
    spec: Union[str, ExecutionBackend, None]
) -> ExecutionBackend:
    """Resolve a backend name (or pass an instance through).

    ``None`` resolves to ``"sim"``, matching
    :attr:`ExperimentConfig.backend`'s default.
    """
    if isinstance(spec, ExecutionBackend):
        return spec
    name = spec or "sim"
    if name not in _REGISTRY:
        module = _BUILTIN_MODULES.get(name)
        if module is None:
            known = sorted(set(_REGISTRY) | set(_BUILTIN_MODULES))
            raise ValueError(
                f"unknown backend {name!r}; choose from {known}"
            )
        importlib.import_module(module)  # module registers itself
    return _REGISTRY[name]()
