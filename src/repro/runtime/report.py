"""The one report schema every execution backend produces.

A :class:`RunReport` is the outcome of running one scheduler over one
seeded workload on one backend — simulator, live TCP cluster, or anything
registered later.  The *exported* fields (everything :meth:`as_dict`
emits) have identical keys and types regardless of backend, which is what
lets one experiment sweep both execution modes through the same export
and figure pipeline; CI asserts the schemas can never drift apart.

Backend-specific artifacts that cannot be schema-stable — the simulator's
full :class:`~repro.simulator.trace.SimulationTrace`, the live master's
bound port — ride along in :attr:`RunReport.extras` and are exposed as
conveniences (:attr:`trace`, :attr:`port`, :attr:`events_dispatched`) but
never exported.

Every ratio is computed by :func:`repro.metrics.compliance.ratio` — one
guard, one division, for both backends.

``SimulationResult`` and ``ClusterReport`` are deprecated aliases of
:class:`RunReport`, kept for one release.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Dict, List

from ..metrics.compliance import percent, ratio
from .driver import PhaseTrace


@dataclass
class RunReport:
    """Outcome of one complete run on any backend."""

    backend: str
    scheduler_name: str
    num_workers: int
    seed: int
    total_tasks: int
    guaranteed: int
    completed: int
    deadline_hits: int
    completed_late: int
    expired: int
    failed: int
    guaranteed_violations: int
    reschedules: int
    workers_lost: int
    makespan: float
    wall_seconds: float
    phases: List[PhaseTrace] = field(default_factory=list)
    #: Schedulability-oracle verdict and regret for this run's workload
    #: (see :mod:`repro.analysis.schedulability`).  Populated by the
    #: experiment runner after the backend returns; empty means the
    #: oracle was not consulted.
    regret: Dict[str, object] = field(default_factory=dict)
    #: Inter-domain migration accounting for sharded runs (see
    #: :mod:`repro.sharding`): offer/accept/decline counts and per-domain
    #: flows.  Empty for single-master runs — the key set is part of the
    #: stable schema either way.
    migration: Dict[str, object] = field(default_factory=dict)
    #: Backend artifacts outside the stable schema (never exported).
    extras: Dict[str, object] = field(
        default_factory=dict, repr=False, compare=False
    )

    # ----- ratios (all via metrics.compliance) ------------------------------

    @property
    def hit_ratio(self) -> float:
        """Deadline compliance: fraction of tasks finished by deadline."""
        return ratio(self.deadline_hits, self.total_tasks)

    @property
    def hit_percent(self) -> float:
        """:attr:`hit_ratio` as a percentage (the figures' y axis)."""
        return percent(self.deadline_hits, self.total_tasks)

    @property
    def guarantee_ratio(self) -> float:
        """Fraction of tasks delivered under an unrevoked guarantee."""
        return ratio(self.guaranteed, self.total_tasks)

    @property
    def compliance_ratio(self) -> float:
        """Deprecated alias of :attr:`hit_ratio` (old ClusterReport name)."""
        return self.hit_ratio

    @property
    def makespan_units(self) -> float:
        """Deprecated alias of :attr:`makespan` (old ClusterReport name)."""
        return self.makespan

    # ----- phase-level aggregates -------------------------------------------

    @property
    def num_phases(self) -> int:
        """How many scheduling phases the run took."""
        return len(self.phases)

    @property
    def dead_end_rate(self) -> float:
        """Fraction of phases that terminated in a dead end."""
        if not self.phases:
            return 0.0
        return sum(1 for p in self.phases if p.dead_end) / len(self.phases)

    @property
    def mean_depth(self) -> float:
        """Average schedule depth over productive phases."""
        productive = [p for p in self.phases if p.scheduled > 0]
        if not productive:
            return 0.0
        return sum(p.max_depth for p in productive) / len(productive)

    @property
    def mean_processors_touched(self) -> float:
        """Average distinct processors used per productive phase schedule."""
        productive = [p for p in self.phases if p.scheduled > 0]
        if not productive:
            return 0.0
        return sum(p.processors_touched for p in productive) / len(productive)

    @property
    def total_scheduling_time(self) -> float:
        """Virtual time the host spent inside scheduling phases."""
        return sum(p.time_used for p in self.phases)

    # ----- backend extras ---------------------------------------------------

    @property
    def trace(self):
        """The simulator's full trace (sim backend only)."""
        try:
            return self.extras["trace"]
        except KeyError:
            raise AttributeError(
                f"the {self.backend!r} backend records no simulation trace"
            ) from None

    @property
    def events_dispatched(self) -> int:
        """Engine events dispatched (sim backend only; 0 elsewhere)."""
        return int(self.extras.get("events_dispatched", 0))

    @property
    def port(self) -> int:
        """The live master's bound TCP port (cluster backend only)."""
        try:
            return int(self.extras["port"])
        except KeyError:
            raise AttributeError(
                f"the {self.backend!r} backend binds no port"
            ) from None

    # ----- presentation -----------------------------------------------------

    def summary(self) -> str:
        """One-line human-readable digest used by examples and the CLI."""
        return (
            f"{self.scheduler_name}: {self.deadline_hits}/"
            f"{self.total_tasks} deadlines met "
            f"({self.hit_percent:.1f}%), "
            f"{len(self.phases)} phases, makespan {self.makespan:.1f}, "
            f"dead-end rate {100 * self.dead_end_rate:.1f}%"
        )

    def render(self) -> str:
        """Multi-line report used by the CLI (both backends)."""
        lines = [
            (
                f"{self.scheduler_name} on {self.num_workers} workers - "
                f"{self.backend} backend (seed {self.seed})"
            ),
            (
                f"guarantee ratio:  {self.guarantee_ratio:.3f} "
                f"({self.guaranteed}/{self.total_tasks} guaranteed)"
            ),
            (
                f"compliance ratio: {self.hit_ratio:.3f} "
                f"({self.deadline_hits}/{self.total_tasks} met their deadline)"
            ),
            (
                f"completed {self.completed} (late {self.completed_late}), "
                f"expired {self.expired}, failed {self.failed}, "
                f"guaranteed-but-missed {self.guaranteed_violations}"
            ),
            (
                f"phases {self.num_phases}, reschedules {self.reschedules}, "
                f"workers lost {self.workers_lost}"
            ),
            (
                f"makespan {self.makespan:.1f} units "
                f"({self.wall_seconds:.2f} s wall)"
            ),
        ]
        return "\n".join(lines)

    # ----- export -----------------------------------------------------------

    def as_dict(self) -> Dict[str, object]:
        """The stable, backend-neutral schema (extras excluded).

        Keys *and* value types are identical for every backend; CI's
        backend-matrix job asserts exactly that.
        """
        return {
            "backend": self.backend,
            "scheduler_name": self.scheduler_name,
            "num_workers": self.num_workers,
            "seed": self.seed,
            "total_tasks": self.total_tasks,
            "guaranteed": self.guaranteed,
            "completed": self.completed,
            "deadline_hits": self.deadline_hits,
            "completed_late": self.completed_late,
            "expired": self.expired,
            "failed": self.failed,
            "guaranteed_violations": self.guaranteed_violations,
            "reschedules": self.reschedules,
            "workers_lost": self.workers_lost,
            "makespan": float(self.makespan),
            "wall_seconds": float(self.wall_seconds),
            "hit_ratio": self.hit_ratio,
            "guarantee_ratio": self.guarantee_ratio,
            "num_phases": self.num_phases,
            "regret": dict(self.regret),
            "migration": dict(self.migration),
            "phases": [asdict(phase) for phase in self.phases],
        }


#: Deprecated aliases, kept for one release.  Old call sites constructing
#: these by keyword must migrate to the RunReport field names.
SimulationResult = RunReport
ClusterReport = RunReport
