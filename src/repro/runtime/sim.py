"""The simulator backend: the virtual-clock discrete-event machine.

This is the default backend and the paper's own evaluation vehicle.  It
builds the seeded database/workload and the named scheduler exactly the
way :mod:`repro.experiments.runner` always has, runs one
:class:`~repro.simulator.runtime.DistributedRuntime`, and returns its
:class:`~repro.runtime.report.RunReport`.
"""

from __future__ import annotations

from ..observability import get_instrumentation
from .backend import ExecutionBackend, register_backend
from .report import RunReport


class SimBackend(ExecutionBackend):
    """Runs a cell on the discrete-event simulator."""

    name = "sim"

    def run_once(
        self,
        config,
        scheduler_name: str,
        seed: int,
        *,
        evaluator=None,
        quantum_policy=None,
        validate_phases: bool = False,
        instrumentation=None,
    ) -> RunReport:
        """Simulate one repetition on the virtual clock.

        Builds the workload from ``seed``, runs the discrete-event loop,
        and returns its :class:`RunReport`; every time in the report is
        virtual quanta except ``wall_seconds``, which is the simulation's
        real CPU time.  Pure and stateless, so one ``SimBackend`` may be
        shared by any number of threads or sweep worker processes.
        """
        # Imported here, not at module level: the experiment builders
        # import the backend registry, so the arrow must point one way at
        # import time.
        from ..core.affinity import UniformCommunicationModel
        from ..experiments.runner import build_scheduler, build_workload
        from ..simulator.runtime import simulate

        if getattr(config, "domains", 1) > 1:
            # A multi-domain cell is the sharded runtime's job; delegating
            # keeps `--backend sim --domains k` meaningful instead of
            # silently ignoring the partition.
            from .sharded import ShardedBackend

            return ShardedBackend().run_once(
                config, scheduler_name, seed,
                evaluator=evaluator, quantum_policy=quantum_policy,
                validate_phases=validate_phases,
                instrumentation=instrumentation,
            )

        comm = UniformCommunicationModel(remote_cost=config.remote_cost)
        _, tasks = build_workload(config, seed)
        scheduler = build_scheduler(
            scheduler_name, config, comm,
            evaluator=evaluator, quantum_policy=quantum_policy,
        )
        obs = (
            instrumentation
            if instrumentation is not None
            else get_instrumentation()
        )
        return simulate(
            scheduler=scheduler,
            workload=tasks,
            num_workers=config.num_processors,
            validate_phases=validate_phases,
            instrumentation=obs.bind(seed=seed) if obs.enabled else None,
            seed=seed,
        )


register_backend(SimBackend.name, SimBackend)
