"""The sharded backend: k scheduling domains on the virtual clock.

Builds the same seeded workload as the ``sim`` backend, partitions the
worker set per ``config.domains`` / ``config.partition_policy``, gives
every domain its own scheduler instance (independent search state — the
whole point), and runs the
:class:`~repro.sharding.sim.ShardedRuntime`.  With ``domains=1`` the
partition is trivial but the run still goes through the sharded code
path, which is what lets the shard-curve compare k=1 against k>1 inside
one backend's physics.
"""

from __future__ import annotations

from ..observability import get_instrumentation
from .backend import ExecutionBackend, register_backend
from .report import RunReport


class ShardedBackend(ExecutionBackend):
    """Runs a cell on the multi-domain discrete-event simulator."""

    name = "sharded"

    def run_once(
        self,
        config,
        scheduler_name: str,
        seed: int,
        *,
        evaluator=None,
        quantum_policy=None,
        validate_phases: bool = False,
        instrumentation=None,
    ) -> RunReport:
        """Simulate one repetition across ``config.domains`` domains.

        Deterministic for a ``(config, seed)`` pair: the workload, the
        partition, the routing, and every migration decision are pure
        functions of the inputs, so sweep cells are byte-stable across
        worker counts exactly like the single-master simulator's.
        """
        # Imported here, not at module level: the experiment builders
        # import the backend registry, so the arrow must point one way at
        # import time.
        from ..core.affinity import UniformCommunicationModel
        from ..core.domains import partition_workers
        from ..experiments.runner import build_scheduler, build_workload
        from ..sharding.sim import ShardedRuntime

        comm = UniformCommunicationModel(remote_cost=config.remote_cost)
        _, tasks = build_workload(config, seed)
        assignment = partition_workers(
            config.num_processors,
            config.domains,
            config.partition_policy,
            tasks=tasks,
        )
        schedulers = [
            build_scheduler(
                scheduler_name, config, comm,
                evaluator=evaluator, quantum_policy=quantum_policy,
            )
            for _ in range(assignment.num_domains)
        ]
        obs = (
            instrumentation
            if instrumentation is not None
            else get_instrumentation()
        )
        runtime = ShardedRuntime(
            schedulers=schedulers,
            assignment=assignment,
            workload=tasks,
            remote_cost=config.remote_cost,
            validate_phases=validate_phases,
            instrumentation=obs.bind(seed=seed) if obs.enabled else None,
            seed=seed,
        )
        return runtime.run()


register_backend(ShardedBackend.name, ShardedBackend)
