"""The service backend: open-loop load against a long-lived master.

Where the ``"cluster"`` backend replays the closed batch workload, this
backend stands up a :class:`~repro.service.master.ServiceMaster` with its
worker fleet and drives it with the in-process open-loop load generator:
the experiment's ``arrival``, ``offered_load`` and ``admission_policy``
fields pick the stream shape and the shedding policy, so a sweep grid
over those fields *is* a deadline-compliance-under-load study — every
cell caches, resumes, and exports exactly like any other experiment.

The master's report counts every submission in ``total_tasks``, so
``hit_ratio`` is compliance against *offered* load — shed and rejected
work is paid for, which is the honest way to compare shedding policies.
The client-side view (accepted/rejected/unsettled as the wire saw them)
rides along in ``extras`` under ``load_*`` keys.
"""

from __future__ import annotations

from dataclasses import replace

from .backend import ExecutionBackend, register_backend
from .report import RunReport


class ServiceBackend(ExecutionBackend):
    """Runs a cell as one service lifetime under open-loop load.

    Stateless between runs; not concurrency-safe with a pinned port (the
    sweep engine serializes service cells exactly like cluster cells).
    The run ends by going idle: the load thread submits its stream,
    every submission settles, the client disconnects, and the master
    drains.
    """

    name = "service"

    def __init__(
        self,
        *,
        port: int = None,
        seconds_per_unit: float = None,
        heartbeat_interval: float = None,
        guarantee_margin_seconds: float = None,
        max_wall_seconds: float = None,
        failure=None,
        drain_grace_seconds: float = None,
        max_backlog_units: float = None,
        submissions: int = None,
        settle_grace_seconds: float = None,
    ) -> None:
        cluster_overrides = {
            "port": port,
            "seconds_per_unit": seconds_per_unit,
            "heartbeat_interval": heartbeat_interval,
            "guarantee_margin_seconds": guarantee_margin_seconds,
            "max_wall_seconds": max_wall_seconds,
            "failure": failure,
        }
        self._cluster_overrides = {
            key: value for key, value in cluster_overrides.items()
            if value is not None
        }
        service_overrides = {
            "drain_grace_seconds": drain_grace_seconds,
            "max_backlog_units": max_backlog_units,
        }
        self._service_overrides = {
            key: value for key, value in service_overrides.items()
            if value is not None
        }
        load_overrides = {
            "submissions": submissions,
            "settle_grace_seconds": settle_grace_seconds,
        }
        self._load_overrides = {
            key: value for key, value in load_overrides.items()
            if value is not None
        }

    def with_port(self, port: int) -> "ServiceBackend":
        """A copy whose master binds ``port`` (for sweep port leasing)."""
        clone = ServiceBackend()
        clone._cluster_overrides = {
            **self._cluster_overrides, "port": port
        }
        clone._service_overrides = dict(self._service_overrides)
        clone._load_overrides = dict(self._load_overrides)
        return clone

    def run_once(
        self,
        config,
        scheduler_name: str,
        seed: int,
        *,
        evaluator=None,
        quantum_policy=None,
        validate_phases: bool = False,
        instrumentation=None,
    ) -> RunReport:
        """One service lifetime: serve, load, drain, report.

        Blocks for the whole stream plus settle; returns the master's
        report with the client-side tallies merged into ``extras``.
        """
        if evaluator is not None or quantum_policy is not None:
            raise NotImplementedError(
                "scheduler construction overrides (evaluator, "
                "quantum_policy) are simulator-only; the service master "
                "builds its scheduler from the registry name"
            )
        # Imported here for the same reasons as the cluster backend: keep
        # sockets/multiprocessing out of sim-only processes and break the
        # service -> experiments -> backend import cycle.
        from ..cluster.config import ClusterConfig
        from ..service.config import ServiceConfig
        from ..service.load import LoadSpec, run_load
        from ..service.server import run_service

        experiment = replace(
            config, base_seed=seed, runs=1, backend=self.name
        )
        cluster_config = ClusterConfig(
            experiment=experiment,
            scheduler_name=scheduler_name,
            **self._cluster_overrides,
        )
        service_config = ServiceConfig(
            cluster=cluster_config,
            admission_policy=experiment.admission_policy,
            stop_when_idle=True,
            **self._service_overrides,
        )
        spec = LoadSpec(
            experiment=experiment,
            arrival=experiment.arrival,
            offered_load=experiment.offered_load,
            seed=seed,
            seconds_per_unit=cluster_config.seconds_per_unit,
            **self._load_overrides,
        )
        holder = {}

        def _drive(host: str, port: int) -> None:
            holder["load"] = run_load(host, port, spec)

        report = run_service(
            service_config,
            instrumentation=instrumentation,
            drive_load=_drive,
        )
        load = holder.get("load")
        if load is not None:
            report.extras.update(
                load_submitted=load.submitted,
                load_accepted=load.accepted,
                load_rejected=load.rejected,
                load_unsettled=load.unsettled,
                load_hit_ratio=load.hit_ratio,
                load_reject_reasons=dict(load.reject_reasons),
            )
        report.extras.update(
            arrival=experiment.arrival,
            offered_load=experiment.offered_load,
        )
        return report


register_backend(ServiceBackend.name, ServiceBackend)
