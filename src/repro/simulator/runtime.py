"""The on-line scheduling runtime: host + workers under a virtual clock.

This is the simulator counterpart of the paper's deployment on the Intel
Paragon: a dedicated host processor runs scheduling phases back to back
while the ``m`` working processors concurrently execute previously delivered
schedules.  The cycle per phase ``j`` (paper Section 4):

1. form ``Batch(j)`` from unscheduled leftovers plus tasks arrived during
   phase ``j-1``; evict tasks whose deadlines are already hopeless;
2. allocate ``Q_s(j)`` via the scheduler's quantum policy;
3. search for a feasible (partial) schedule ``S_j`` under that quantum;
4. at ``t_e = t_s + sigma_j`` deliver ``S_j`` to the ready queues.

Workers execute non-preemptively in delivery order and report completions as
events.  The runtime records every task's lifecycle for the metrics layer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional

from ..core.scheduler import Scheduler
from ..core.batch import Batch
from ..core.task import Task, TaskSet
from ..observability import Instrumentation, get_instrumentation
from .engine import SimulationEngine, SimulationError
from .events import (
    HostWake,
    ProcessorFailed,
    ScheduleDelivered,
    TaskArrived,
    TaskFinished,
)
from .execution import ExecutionTimeModel, resolve_actual_cost
from .machine import Machine, MachineConfig
from .trace import (
    STATUS_COMPLETED,
    STATUS_EXPIRED,
    STATUS_FAILED,
    PhaseTrace,
    SimulationTrace,
)

#: Safety cap on dispatched events; generously above any legitimate run
#: (a 1000-task burst dispatches a few thousand events).
DEFAULT_MAX_EVENTS = 5_000_000


@dataclass
class SimulationResult:
    """Outcome of one complete on-line run."""

    trace: SimulationTrace
    scheduler_name: str
    num_workers: int
    makespan: float
    events_dispatched: int

    @property
    def hit_ratio(self) -> float:
        return self.trace.hit_ratio()

    @property
    def phases(self) -> List[PhaseTrace]:
        return self.trace.phases

    def summary(self) -> str:
        """One-line human-readable digest used by examples and the CLI."""
        trace = self.trace
        return (
            f"{self.scheduler_name}: {trace.deadline_hits()}/"
            f"{trace.total_tasks()} deadlines met "
            f"({100 * trace.hit_ratio():.1f}%), "
            f"{len(trace.phases)} phases, makespan {self.makespan:.1f}, "
            f"dead-end rate {100 * trace.dead_end_rate():.1f}%"
        )


class DistributedRuntime:
    """Drives one scheduler over one workload on one simulated machine."""

    def __init__(
        self,
        scheduler: Scheduler,
        machine: Machine,
        workload: Iterable[Task],
        max_events: int = DEFAULT_MAX_EVENTS,
        validate_phases: bool = False,
        execution_model: Optional[ExecutionTimeModel] = None,
        failures: Optional[List] = None,
        instrumentation: Optional[Instrumentation] = None,
    ) -> None:
        self.scheduler = scheduler
        self.machine = machine
        self.workload = list(workload)
        self.max_events = max_events
        self.validate_phases = validate_phases
        self.execution_model = execution_model
        # (time, processor) fail-stop crash injections.
        self.failures = list(failures or [])
        for at, processor in self.failures:
            if not 0 <= processor < machine.num_workers:
                raise ValueError(f"failure targets unknown P{processor}")
            if at < 0:
                raise ValueError("failure time must be non-negative")

        # Resolved at construction; bound with the scheduler name so every
        # event this run emits says which scheduler produced it.
        base_obs = instrumentation or get_instrumentation()
        self.obs = (
            base_obs.bind(scheduler=scheduler.name)
            if base_obs.enabled
            else base_obs
        )
        self.engine = SimulationEngine()
        self.trace = SimulationTrace()
        self.batch = Batch()
        self._pending: List[Task] = []
        self._host_busy = False
        self._wake_pending = False
        self._last_expired = 0

        self.engine.subscribe(TaskArrived, self._on_task_arrived)
        self.engine.subscribe(HostWake, self._on_host_wake)
        self.engine.subscribe(ScheduleDelivered, self._on_schedule_delivered)
        self.engine.subscribe(TaskFinished, self._on_task_finished)
        self.engine.subscribe(ProcessorFailed, self._on_processor_failed)

    # ----- instrumentation -------------------------------------------------

    def _task_event(
        self, transition: str, task_id: int, t: float, **extra: object
    ) -> None:
        """One task lifecycle transition (trace event + transition counter)."""
        self.obs.emit("task", transition=transition, task_id=task_id, t=t, **extra)
        self.obs.metrics.counter(
            "runtime_task_transitions", transition=transition
        ).inc()

    # ----- event handlers --------------------------------------------------

    def _on_task_arrived(self, now: float, event: TaskArrived) -> None:
        self._pending.append(event.task)
        if self.obs.enabled:
            self._task_event("arrived", event.task.task_id, now)
        self._request_wake(now)

    def _request_wake(self, now: float) -> None:
        if self._host_busy or self._wake_pending:
            return
        self._wake_pending = True
        self.engine.schedule_at(now, HostWake())

    def _on_host_wake(self, now: float, event: HostWake) -> None:
        self._wake_pending = False
        if not self._host_busy:
            self._start_phase(now)

    def _start_phase(self, now: float) -> None:
        """Open scheduling phase ``j`` if there is anything to schedule."""
        if self._pending:
            self.batch.add_arrivals(self._pending)
            self._pending.clear()
        expired = self.batch.drop_expired(now)
        for task in expired:
            self.trace.records[task.task_id].status = STATUS_EXPIRED
            if self.obs.enabled:
                self._task_event(
                    "expired", task.task_id, now, deadline=task.deadline
                )
        if not self.batch:
            # Nothing schedulable; the host sleeps until the next arrival.
            return
        loads = self.machine.loads(now)
        batch_tasks = self.batch.edf_order()
        quantum = self.scheduler.plan_quantum(batch_tasks, loads, now)
        result = self.scheduler.schedule_phase(batch_tasks, loads, now, quantum)
        if self.validate_phases:
            result.validate(self.machine.comm)
        self._host_busy = True
        self._last_expired = len(expired)
        self.engine.schedule_at(result.phase_end, ScheduleDelivered(result))

    def _on_schedule_delivered(self, now: float, event: ScheduleDelivered) -> None:
        result = event.result
        self._host_busy = False
        phase_index = self.batch.phase_index
        scheduled_ids = result.schedule.task_ids()
        if scheduled_ids:
            self.batch.remove_scheduled(scheduled_ids)
        self.batch.advance_phase()
        for entry in result.schedule:
            worker = self.machine.workers[entry.processor]
            if worker.failed:
                # The processor died between phase start and delivery; the
                # assignment returns to the batch and is rescheduled on the
                # survivors through the normal feasibility path.
                self._pending.append(entry.task)
                continue
            record = self.trace.records[entry.task.task_id]
            record.scheduled_phase = phase_index
            record.processor = entry.processor
            record.delivered_at = now
            actual = resolve_actual_cost(self.execution_model, entry)
            record.planned_cost = entry.total_cost
            record.actual_cost = actual
            worker.deliver(entry, now, actual_cost=actual)
            if self.obs.enabled:
                self._task_event(
                    "delivered",
                    entry.task.task_id,
                    now,
                    processor=entry.processor,
                    phase=phase_index,
                )
        # Kick any worker that was idle and just received work.
        for entry in result.schedule:
            if not self.machine.workers[entry.processor].failed:
                self._maybe_start_worker(entry.processor, now)
        self.trace.phases.append(
            PhaseTrace(
                index=phase_index,
                start=result.phase_start,
                quantum=result.quantum,
                time_used=result.time_used,
                # Batch(j) size at phase start: what was scheduled plus what
                # rolled over (pending arrivals merge only at phase start).
                batch_size=len(result.schedule) + len(self.batch),
                scheduled=len(result.schedule),
                expired_before=self._last_expired,
                dead_end=result.stats.dead_end,
                complete=result.stats.complete,
                max_depth=result.stats.max_depth,
                processors_touched=result.stats.processors_touched,
                vertices_generated=result.stats.vertices_generated,
            )
        )
        self._start_phase(now)

    def _maybe_start_worker(self, processor: int, now: float) -> None:
        worker = self.machine.workers[processor]
        running = worker.start_next(now)
        if running is not None:
            record = self.trace.records[running.task.task_id]
            record.started_at = running.started_at
            if self.obs.enabled:
                self._task_event(
                    "started",
                    running.task.task_id,
                    running.started_at,
                    processor=processor,
                )
            self.engine.schedule_at(
                running.finishes_at,
                TaskFinished(processor=processor, task_id=running.task.task_id),
            )

    def _on_processor_failed(self, now: float, event: ProcessorFailed) -> None:
        worker = self.machine.workers[event.processor]
        if worker.failed:
            return
        lost, survivors = worker.fail(now)
        if lost is not None:
            record = self.trace.records[lost.task.task_id]
            record.status = STATUS_FAILED
            record.finished_at = None
            if self.obs.enabled:
                self._task_event(
                    "failed", lost.task.task_id, now, processor=event.processor
                )
        for work in survivors:
            # Undelivered work returns to the host for rescheduling on the
            # surviving processors, through the normal feasibility path.
            record = self.trace.records[work.task.task_id]
            record.scheduled_phase = None
            record.processor = None
            record.delivered_at = None
            record.planned_cost = None
            record.actual_cost = None
            self._pending.append(work.task)
        self._request_wake(now)

    def _on_task_finished(self, now: float, event: TaskFinished) -> None:
        worker = self.machine.workers[event.processor]
        if worker.failed:
            # Stale completion of a task that was lost in the crash.
            return
        finished = worker.complete_current(now)
        if finished.task.task_id != event.task_id:
            raise SimulationError(
                f"P{event.processor} finished task {finished.task.task_id}, "
                f"expected {event.task_id}"
            )
        record = self.trace.records[event.task_id]
        record.status = STATUS_COMPLETED
        record.finished_at = now
        if self.obs.enabled:
            self._task_event(
                "finished",
                event.task_id,
                now,
                processor=event.processor,
                met_deadline=record.met_deadline,
            )
        self._maybe_start_worker(event.processor, now)

    # ----- public API ------------------------------------------------------

    def run(self) -> SimulationResult:
        """Execute the full workload; returns the aggregated result."""
        self.scheduler.reset()
        obs = self.obs
        # Lend the run's instrumentation to the scheduler so phase spans and
        # per-scheduler counters flow even when the caller passed it only to
        # simulate(); an explicitly instrumented scheduler keeps its own.
        lend_obs = obs.enabled and self.scheduler.instrumentation is None
        if lend_obs:
            self.scheduler.instrumentation = obs
        try:
            return self._run(obs)
        finally:
            if lend_obs:
                self.scheduler.instrumentation = None

    def _run(self, obs: Instrumentation) -> SimulationResult:
        if obs.enabled:
            obs.emit(
                "run_start",
                workers=self.machine.num_workers,
                tasks=len(self.workload),
            )
        for task in self.workload:
            self.trace.add_task(task)
            self.engine.schedule_at(task.arrival_time, TaskArrived(task))
        for at, processor in self.failures:
            self.engine.schedule_at(at, ProcessorFailed(processor))
        self.engine.run(max_events=self.max_events)
        if self.batch or self._pending:
            raise SimulationError(
                "simulation drained with tasks still unscheduled; "
                "this indicates a stalled host loop"
            )
        self.trace.finished_at = self.engine.now
        result = SimulationResult(
            trace=self.trace,
            scheduler_name=self.scheduler.name,
            num_workers=self.machine.num_workers,
            makespan=self.engine.now,
            events_dispatched=self.engine.events_dispatched,
        )
        if obs.enabled:
            obs.emit(
                "run_end",
                workers=self.machine.num_workers,
                tasks=self.trace.total_tasks(),
                deadline_hits=self.trace.deadline_hits(),
                phases=len(self.trace.phases),
                makespan=self.engine.now,
                events_dispatched=self.engine.events_dispatched,
            )
            obs.metrics.counter("runtime_runs").inc()
            obs.metrics.counter(
                "runtime_events_dispatched"
            ).inc(self.engine.events_dispatched)
            obs.metrics.histogram("runtime_makespan").observe(self.engine.now)
        return result


def simulate(
    scheduler: Scheduler,
    workload: Iterable[Task] | TaskSet,
    num_workers: int,
    comm=None,
    validate_phases: bool = False,
    execution_model: Optional[ExecutionTimeModel] = None,
    failures: Optional[List] = None,
    instrumentation: Optional[Instrumentation] = None,
) -> SimulationResult:
    """Convenience wrapper: build the machine and run one simulation.

    ``comm`` defaults to the scheduler's own communication model when it has
    one (all built-in schedulers do), keeping the scheduler's view of costs
    and the machine's actual costs consistent.
    """
    if comm is None:
        comm = getattr(scheduler, "comm", None)
        if comm is None:
            raise ValueError(
                "scheduler exposes no communication model; pass comm explicitly"
            )
    machine = Machine(MachineConfig(num_workers=num_workers, comm=comm))
    runtime = DistributedRuntime(
        scheduler=scheduler,
        machine=machine,
        workload=workload,
        validate_phases=validate_phases,
        execution_model=execution_model,
        failures=failures,
        instrumentation=instrumentation,
    )
    return runtime.run()
