"""The on-line scheduling runtime: host + workers under a virtual clock.

This is the simulator counterpart of the paper's deployment on the Intel
Paragon: a dedicated host processor runs scheduling phases back to back
while the ``m`` working processors concurrently execute previously delivered
schedules.  The cycle per phase ``j`` (paper Section 4):

1. form ``Batch(j)`` from unscheduled leftovers plus tasks arrived during
   phase ``j-1``; evict tasks whose deadlines are already hopeless;
2. allocate ``Q_s(j)`` via the scheduler's quantum policy;
3. search for a feasible (partial) schedule ``S_j`` under that quantum;
4. at ``t_e = t_s + sigma_j`` deliver ``S_j`` to the ready queues.

The loop itself lives in the backend-neutral
:class:`~repro.runtime.driver.PhaseDriver`; this module is the simulator's
:class:`~repro.runtime.driver.PhaseHooks` implementation — it answers the
driver's questions (loads, delivery, expiry accounting) in virtual time
and wires the driver to the discrete-event engine.  Workers execute
non-preemptively in delivery order and report completions as events.  The
runtime records every task's lifecycle for the metrics layer.
"""

from __future__ import annotations

import time
from typing import Iterable, List, Optional

from ..core.scheduler import Scheduler
from ..core.task import Task, TaskSet
from ..observability import Instrumentation, get_instrumentation
from ..runtime.driver import OpenPhase, PhaseDriver, PhaseHooks
from ..runtime.report import RunReport, SimulationResult  # noqa: F401
from .engine import SimulationEngine, SimulationError
from .events import (
    HostWake,
    ProcessorFailed,
    ScheduleDelivered,
    TaskArrived,
    TaskFinished,
)
from .execution import ExecutionTimeModel, resolve_actual_cost
from .machine import Machine, MachineConfig
from .trace import (
    STATUS_COMPLETED,
    STATUS_EXPIRED,
    STATUS_FAILED,
    SimulationTrace,
)

#: Safety cap on dispatched events; generously above any legitimate run
#: (a 1000-task burst dispatches a few thousand events).
DEFAULT_MAX_EVENTS = 5_000_000


class DistributedRuntime(PhaseHooks):
    """Drives one scheduler over one workload on one simulated machine."""

    def __init__(
        self,
        scheduler: Scheduler,
        machine: Machine,
        workload: Iterable[Task],
        max_events: int = DEFAULT_MAX_EVENTS,
        validate_phases: bool = False,
        execution_model: Optional[ExecutionTimeModel] = None,
        failures: Optional[List] = None,
        instrumentation: Optional[Instrumentation] = None,
        seed: int = 0,
    ) -> None:
        self.scheduler = scheduler
        self.machine = machine
        self.workload = list(workload)
        self.max_events = max_events
        self.validate_phases = validate_phases
        self.execution_model = execution_model
        self.seed = seed
        # (time, processor) fail-stop crash injections.
        self.failures = list(failures or [])
        for at, processor in self.failures:
            if not 0 <= processor < machine.num_workers:
                raise ValueError(f"failure targets unknown P{processor}")
            if at < 0:
                raise ValueError("failure time must be non-negative")

        # Resolved at construction; bound with the scheduler name so every
        # event this run emits says which scheduler produced it.
        base_obs = instrumentation or get_instrumentation()
        self.obs = (
            base_obs.bind(scheduler=scheduler.name)
            if base_obs.enabled
            else base_obs
        )
        self.engine = SimulationEngine()
        self.trace = SimulationTrace()
        self.driver = PhaseDriver(scheduler=scheduler, hooks=self)
        # One phase list, shared by reference: the driver appends, the
        # trace's aggregate views read.
        self.trace.phases = self.driver.phases
        self._host_busy = False
        self._wake_pending = False
        self._open_phase: Optional[OpenPhase] = None

        self.engine.subscribe(TaskArrived, self._on_task_arrived)
        self.engine.subscribe(HostWake, self._on_host_wake)
        self.engine.subscribe(ScheduleDelivered, self._on_schedule_delivered)
        self.engine.subscribe(TaskFinished, self._on_task_finished)
        self.engine.subscribe(ProcessorFailed, self._on_processor_failed)

    # ----- instrumentation -------------------------------------------------

    def _task_event(
        self, transition: str, task_id: int, t: float, **extra: object
    ) -> None:
        """One task lifecycle transition (trace event + transition counter)."""
        self.obs.emit("task", transition=transition, task_id=task_id, t=t, **extra)
        self.obs.metrics.counter(
            "runtime_task_transitions", transition=transition
        ).inc()

    # ----- PhaseHooks: the driver's view of the simulated machine ----------

    def loads(self, now: float) -> List[float]:
        return self.machine.loads(now)

    def on_task_expired(self, task: Task, now: float) -> None:
        self.trace.records[task.task_id].status = STATUS_EXPIRED
        if self.obs.enabled:
            self._task_event(
                "expired",
                task.task_id,
                now,
                deadline=task.deadline,
                arrival=task.arrival_time,
            )

    def deliver_entry(self, entry, phase_index: int, now: float) -> bool:
        worker = self.machine.workers[entry.processor]
        if worker.failed:
            # The processor died between phase start and delivery; the
            # assignment returns to the pending set and is rescheduled on
            # the survivors through the normal feasibility path.
            return False
        record = self.trace.records[entry.task.task_id]
        record.scheduled_phase = phase_index
        record.processor = entry.processor
        record.delivered_at = now
        actual = resolve_actual_cost(self.execution_model, entry)
        record.planned_cost = entry.total_cost
        record.actual_cost = actual
        worker.deliver(entry, now, actual_cost=actual)
        if self.obs.enabled:
            self._task_event(
                "delivered",
                entry.task.task_id,
                now,
                processor=entry.processor,
                phase=phase_index,
                arrival=entry.task.arrival_time,
                deadline=entry.task.deadline,
                planned_cost=entry.total_cost,
            )
        return True

    # ----- event handlers --------------------------------------------------

    def _on_task_arrived(self, now: float, event: TaskArrived) -> None:
        self.driver.admit([event.task])
        if self.obs.enabled:
            # Deadline + worst-case cost ride on the arrival so a trace is
            # self-contained for the offline schedulability oracle (expired
            # tasks never reach a transition that stamps their cost).
            self._task_event(
                "arrived",
                event.task.task_id,
                now,
                deadline=event.task.deadline,
                cost=event.task.processing_time,
            )
        self._request_wake(now)

    def _request_wake(self, now: float) -> None:
        if self._host_busy or self._wake_pending:
            return
        self._wake_pending = True
        self.engine.schedule_at(now, HostWake())

    def _on_host_wake(self, now: float, event: HostWake) -> None:
        self._wake_pending = False
        if not self._host_busy:
            self._start_phase(now)

    def _start_phase(self, now: float) -> None:
        """Open scheduling phase ``j`` if there is anything to schedule."""
        opened = self.driver.open_phase(now)
        if opened is None:
            # Nothing schedulable; the host sleeps until the next arrival.
            return
        if self.validate_phases:
            opened.result.validate(self.machine.comm)
        self._host_busy = True
        self._open_phase = opened
        self.engine.schedule_at(
            opened.result.phase_end, ScheduleDelivered(opened.result)
        )

    def _on_schedule_delivered(self, now: float, event: ScheduleDelivered) -> None:
        opened = self._open_phase
        self._open_phase = None
        self._host_busy = False
        self.driver.deliver_phase(opened, now)
        # Kick any worker that was idle and just received work.
        for entry in opened.result.schedule:
            if not self.machine.workers[entry.processor].failed:
                self._maybe_start_worker(entry.processor, now)
        self._start_phase(now)

    def _maybe_start_worker(self, processor: int, now: float) -> None:
        worker = self.machine.workers[processor]
        running = worker.start_next(now)
        if running is not None:
            record = self.trace.records[running.task.task_id]
            record.started_at = running.started_at
            if self.obs.enabled:
                self._task_event(
                    "started",
                    running.task.task_id,
                    running.started_at,
                    processor=processor,
                )
            self.engine.schedule_at(
                running.finishes_at,
                TaskFinished(processor=processor, task_id=running.task.task_id),
            )

    def _on_processor_failed(self, now: float, event: ProcessorFailed) -> None:
        worker = self.machine.workers[event.processor]
        if worker.failed:
            return
        lost, survivors = worker.fail(now)
        self.driver.worker_lost()
        if lost is not None:
            record = self.trace.records[lost.task.task_id]
            record.status = STATUS_FAILED
            record.finished_at = None
            # The guarantee died with the processor; the task is terminal
            # and cannot be requeued (non-preemptive, partially executed).
            self.driver.revoke(lost.task.task_id)
            if self.obs.enabled:
                self._task_event(
                    "failed", lost.task.task_id, now, processor=event.processor
                )
        surrendered: List[Task] = []
        for work in survivors:
            # Undelivered work returns to the host for rescheduling on the
            # surviving processors, through the normal feasibility path.
            record = self.trace.records[work.task.task_id]
            record.scheduled_phase = None
            record.processor = None
            record.delivered_at = None
            record.planned_cost = None
            record.actual_cost = None
            surrendered.append(work.task)
        self.driver.surrender(surrendered)
        self._request_wake(now)

    def _on_task_finished(self, now: float, event: TaskFinished) -> None:
        worker = self.machine.workers[event.processor]
        if worker.failed:
            # Stale completion of a task that was lost in the crash.
            return
        finished = worker.complete_current(now)
        if finished.task.task_id != event.task_id:
            raise SimulationError(
                f"P{event.processor} finished task {finished.task.task_id}, "
                f"expected {event.task_id}"
            )
        record = self.trace.records[event.task_id]
        record.status = STATUS_COMPLETED
        record.finished_at = now
        if self.obs.enabled:
            self._task_event(
                "finished",
                event.task_id,
                now,
                processor=event.processor,
                met_deadline=record.met_deadline,
                deadline=record.task.deadline,
            )
        self._maybe_start_worker(event.processor, now)

    # ----- public API ------------------------------------------------------

    def run(self) -> RunReport:
        """Execute the full workload; returns the aggregated report."""
        self.scheduler.reset()
        obs = self.obs
        # Lend the run's instrumentation to the scheduler so phase spans and
        # per-scheduler counters flow even when the caller passed it only to
        # simulate(); an explicitly instrumented scheduler keeps its own.
        lend_obs = obs.enabled and self.scheduler.instrumentation is None
        if lend_obs:
            self.scheduler.instrumentation = obs
        try:
            return self._run(obs)
        finally:
            if lend_obs:
                self.scheduler.instrumentation = None

    def _run(self, obs: Instrumentation) -> RunReport:
        start_wall = time.monotonic()
        if obs.enabled:
            obs.emit(
                "run_start",
                workers=self.machine.num_workers,
                tasks=len(self.workload),
            )
        for task in self.workload:
            self.trace.add_task(task)
            self.engine.schedule_at(task.arrival_time, TaskArrived(task))
        for at, processor in self.failures:
            self.engine.schedule_at(at, ProcessorFailed(processor))
        self.engine.run(max_events=self.max_events)
        if self.driver.has_backlog():
            raise SimulationError(
                "simulation drained with tasks still unscheduled; "
                "this indicates a stalled host loop"
            )
        self.trace.finished_at = self.engine.now
        trace = self.trace
        completed = len(trace.completed())
        hits = trace.deadline_hits()
        report = RunReport(
            backend="sim",
            scheduler_name=self.scheduler.name,
            num_workers=self.machine.num_workers,
            seed=self.seed,
            total_tasks=trace.total_tasks(),
            guaranteed=self.driver.guaranteed_count,
            completed=completed,
            deadline_hits=hits,
            completed_late=completed - hits,
            expired=len(trace.expired()),
            failed=len(trace.failed()),
            guaranteed_violations=len(trace.scheduled_but_missed()),
            reschedules=self.driver.reschedules,
            workers_lost=self.driver.workers_lost,
            makespan=self.engine.now,
            wall_seconds=time.monotonic() - start_wall,
            phases=trace.phases,
            extras={
                "trace": trace,
                "events_dispatched": self.engine.events_dispatched,
            },
        )
        if obs.enabled:
            obs.emit(
                "run_end",
                workers=self.machine.num_workers,
                tasks=self.trace.total_tasks(),
                deadline_hits=self.trace.deadline_hits(),
                phases=len(self.trace.phases),
                makespan=self.engine.now,
                events_dispatched=self.engine.events_dispatched,
            )
            obs.metrics.counter("runtime_runs").inc()
            obs.metrics.counter(
                "runtime_events_dispatched"
            ).inc(self.engine.events_dispatched)
            obs.metrics.histogram("runtime_makespan").observe(self.engine.now)
        return report


def simulate(
    scheduler: Scheduler,
    workload: Iterable[Task] | TaskSet,
    num_workers: int,
    comm=None,
    validate_phases: bool = False,
    execution_model: Optional[ExecutionTimeModel] = None,
    failures: Optional[List] = None,
    instrumentation: Optional[Instrumentation] = None,
    seed: int = 0,
) -> RunReport:
    """Convenience wrapper: build the machine and run one simulation.

    ``comm`` defaults to the scheduler's own communication model when it has
    one (all built-in schedulers do), keeping the scheduler's view of costs
    and the machine's actual costs consistent.  ``seed`` is recorded in the
    report for provenance only — the workload is whatever the caller built.
    """
    if comm is None:
        comm = getattr(scheduler, "comm", None)
        if comm is None:
            raise ValueError(
                "scheduler exposes no communication model; pass comm explicitly"
            )
    machine = Machine(MachineConfig(num_workers=num_workers, comm=comm))
    runtime = DistributedRuntime(
        scheduler=scheduler,
        machine=machine,
        workload=workload,
        validate_phases=validate_phases,
        execution_model=execution_model,
        failures=failures,
        instrumentation=instrumentation,
        seed=seed,
    )
    return runtime.run()
