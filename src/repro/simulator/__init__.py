"""Distributed-memory multiprocessor simulator (the Paragon substitute).

A discrete-event simulation of the paper's deployment: ``m`` working
processors with private memories execute non-preemptable tasks from FIFO
ready queues while a dedicated host processor runs scheduling phases
concurrently.  See DESIGN.md Section 2 for the substitution rationale.
"""

from .engine import SimulationEngine, SimulationError, SimulationObserver
from .events import (
    EventQueue,
    HostWake,
    ProcessorFailed,
    ScheduleDelivered,
    TaskArrived,
    TaskFinished,
)
from .execution import (
    ExecutionModelError,
    ExecutionTimeModel,
    FirstMatchDatabaseExecution,
    ScaledExecution,
    StochasticExecution,
    WorstCaseExecution,
    resolve_actual_cost,
)
from .interconnect import (
    MeshCommunicationModel,
    MeshTopology,
    near_square_mesh,
    wormhole_model,
)
from .machine import DEFAULT_REMOTE_COST, Machine, MachineConfig
from .processor import QueuedWork, RunningWork, WorkerProcessor
from .runtime import (
    DEFAULT_MAX_EVENTS,
    DistributedRuntime,
    SimulationResult,
    simulate,
)
from .trace import (
    STATUS_COMPLETED,
    STATUS_EXPIRED,
    STATUS_FAILED,
    PhaseTrace,
    SimulationTrace,
    TaskRecord,
)

__all__ = [
    "DEFAULT_MAX_EVENTS",
    "DEFAULT_REMOTE_COST",
    "DistributedRuntime",
    "EventQueue",
    "ExecutionModelError",
    "ExecutionTimeModel",
    "FirstMatchDatabaseExecution",
    "ScaledExecution",
    "StochasticExecution",
    "WorstCaseExecution",
    "resolve_actual_cost",
    "HostWake",
    "Machine",
    "MachineConfig",
    "MeshCommunicationModel",
    "MeshTopology",
    "PhaseTrace",
    "ProcessorFailed",
    "QueuedWork",
    "RunningWork",
    "STATUS_COMPLETED",
    "STATUS_EXPIRED",
    "STATUS_FAILED",
    "ScheduleDelivered",
    "SimulationEngine",
    "SimulationError",
    "SimulationObserver",
    "SimulationResult",
    "SimulationTrace",
    "TaskArrived",
    "TaskFinished",
    "TaskRecord",
    "WorkerProcessor",
    "near_square_mesh",
    "simulate",
    "wormhole_model",
]
