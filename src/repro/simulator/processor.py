"""Working processors: private-memory nodes executing their ready queues.

Each working processor owns a FIFO ready queue of delivered assignments and
executes them non-preemptively in delivery order, exactly as the schedules
``S_j`` prescribe (paper Section 4: tasks in ``S_j`` are executed by the
working processors while scheduling of ``S_{j+1}`` is in progress).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Optional

from ..core.schedule import ScheduleEntry
from ..core.task import Task


@dataclass(frozen=True)
class QueuedWork:
    """One delivered assignment awaiting execution on a worker.

    ``total_cost`` is the *actual* processor time the task will consume
    (resolved by the runtime's execution model at delivery); it never
    exceeds ``planned_cost``, the worst case the scheduler budgeted.
    """

    task: Task
    total_cost: float
    delivered_at: float
    planned_cost: float = 0.0


@dataclass
class RunningWork:
    """The assignment currently executing (non-preemptable)."""

    task: Task
    started_at: float
    finishes_at: float


class WorkerProcessor:
    """One node of the distributed-memory machine.

    The worker has no scheduling intelligence: it drains its FIFO queue.
    ``load(now)`` is the paper's ``Load_k`` — the remaining execution cost of
    everything queued plus the unfinished part of the running task.
    """

    def __init__(self, processor_id: int) -> None:
        if processor_id < 0:
            raise ValueError("processor_id must be non-negative")
        self.processor_id = processor_id
        self.queue: Deque[QueuedWork] = deque()
        self.running: Optional[RunningWork] = None
        self.completed_count = 0
        self.busy_time = 0.0
        self.failed = False

    @property
    def is_busy(self) -> bool:
        return self.running is not None

    @property
    def is_idle(self) -> bool:
        return self.running is None and not self.queue

    def load(self, now: float) -> float:
        """Remaining work ``Load_k`` at virtual time ``now``.

        A failed processor reports infinite load, so every feasibility test
        against it fails and the schedulers route around it with no special
        casing.
        """
        if self.failed:
            return float("inf")
        remaining = sum(work.total_cost for work in self.queue)
        if self.running is not None:
            remaining += max(0.0, self.running.finishes_at - now)
        return remaining

    def fail(self, now: float):
        """Fail-stop crash: lose the running task, surrender the queue.

        Returns ``(lost, survivors)``: the in-flight :class:`RunningWork`
        (or None) and the queued entries that never started — the runtime
        returns those to the batch for rescheduling.  Idempotent-hostile:
        failing twice is a caller bug and raises.
        """
        if self.failed:
            raise RuntimeError(f"P{self.processor_id} already failed")
        self.failed = True
        lost = self.running
        survivors = list(self.queue)
        self.running = None
        self.queue.clear()
        if lost is not None:
            self.busy_time += max(0.0, now - lost.started_at)
        return lost, survivors

    def deliver(
        self,
        entry: ScheduleEntry,
        now: float,
        actual_cost: Optional[float] = None,
    ) -> None:
        """Append one schedule entry to the ready queue.

        ``actual_cost`` (defaulting to the planned worst case) is what the
        task will really consume; when it undercuts the plan the worker
        reclaims the difference by starting its next task early.
        """
        if self.failed:
            raise RuntimeError(
                f"cannot deliver to failed processor P{self.processor_id}"
            )
        cost = entry.total_cost if actual_cost is None else actual_cost
        if cost > entry.total_cost + 1e-9:
            raise ValueError(
                f"actual cost {cost} exceeds planned worst case "
                f"{entry.total_cost} for task {entry.task.task_id}"
            )
        self.queue.append(
            QueuedWork(
                task=entry.task,
                total_cost=cost,
                delivered_at=now,
                planned_cost=entry.total_cost,
            )
        )

    def start_next(self, now: float) -> Optional[RunningWork]:
        """Begin the next queued task if idle; returns the running record."""
        if self.failed or self.running is not None:
            return None
        if not self.queue:
            return None
        work = self.queue.popleft()
        self.running = RunningWork(
            task=work.task,
            started_at=now,
            finishes_at=now + work.total_cost,
        )
        return self.running

    def complete_current(self, now: float) -> RunningWork:
        """Finish the running task; caller must pass its finish time."""
        if self.running is None:
            raise RuntimeError(
                f"P{self.processor_id} has no running task to complete"
            )
        if abs(now - self.running.finishes_at) > 1e-9:
            raise RuntimeError(
                f"P{self.processor_id} completion at {now} does not match "
                f"expected finish {self.running.finishes_at}"
            )
        finished = self.running
        self.running = None
        self.completed_count += 1
        self.busy_time += finished.finishes_at - finished.started_at
        return finished

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "busy" if self.is_busy else "idle"
        return (
            f"WorkerProcessor(P{self.processor_id}, {state}, "
            f"queued={len(self.queue)})"
        )
