"""Execution traces: per-phase and per-task records of a simulation run.

The experiment harness consumes these to compute deadline hit ratios, and
the ablations consume the phase-level search statistics (dead-end rates,
depth reached, processors touched) that validate the paper's Section 3
conjectures about sequence-oriented representations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..core.feasibility import EPSILON
from ..core.task import Task

# Canonical homes since the runtime unification; re-exported here because
# this module is where simulator-facing code has always imported them.
from ..metrics.compliance import (  # noqa: F401
    STATUS_COMPLETED,
    STATUS_EXPIRED,
    STATUS_FAILED,
    ratio as _ratio,
)
from ..runtime.driver import PhaseTrace  # noqa: F401


@dataclass
class TaskRecord:
    """Lifecycle of one task through the on-line system."""

    task: Task
    status: str = ""
    processor: Optional[int] = None
    scheduled_phase: Optional[int] = None
    delivered_at: Optional[float] = None
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    planned_cost: Optional[float] = None  # worst case the scheduler budgeted
    actual_cost: Optional[float] = None  # what execution really consumed

    @property
    def task_id(self) -> int:
        return self.task.task_id

    @property
    def was_scheduled(self) -> bool:
        return self.scheduled_phase is not None

    @property
    def met_deadline(self) -> bool:
        """The deadline-compliance predicate of the paper's metric."""
        return (
            self.status == STATUS_COMPLETED
            and self.finished_at is not None
            and self.finished_at <= self.task.deadline + EPSILON
        )

    @property
    def response_time(self) -> Optional[float]:
        if self.finished_at is None:
            return None
        return self.finished_at - self.task.arrival_time

    @property
    def reclaimed_time(self) -> float:
        """Worst-case time the task did not consume (early completion)."""
        if self.planned_cost is None or self.actual_cost is None:
            return 0.0
        return max(0.0, self.planned_cost - self.actual_cost)


@dataclass
class SimulationTrace:
    """All records of a run; the single artifact metrics code consumes."""

    records: Dict[int, TaskRecord] = field(default_factory=dict)
    phases: List[PhaseTrace] = field(default_factory=list)
    finished_at: float = 0.0

    def add_task(self, task: Task) -> TaskRecord:
        if task.task_id in self.records:
            raise ValueError(f"task {task.task_id} already traced")
        record = TaskRecord(task=task)
        self.records[task.task_id] = record
        return record

    # ----- aggregate views -------------------------------------------------

    def total_tasks(self) -> int:
        return len(self.records)

    def completed(self) -> List[TaskRecord]:
        return [r for r in self.records.values() if r.status == STATUS_COMPLETED]

    def expired(self) -> List[TaskRecord]:
        return [r for r in self.records.values() if r.status == STATUS_EXPIRED]

    def failed(self) -> List[TaskRecord]:
        return [r for r in self.records.values() if r.status == STATUS_FAILED]

    def deadline_hits(self) -> int:
        return sum(1 for r in self.records.values() if r.met_deadline)

    def hit_ratio(self) -> float:
        """Deadline compliance: fraction of tasks finished by their deadline."""
        return _ratio(self.deadline_hits(), len(self.records))

    def scheduled_but_missed(self) -> List[TaskRecord]:
        """Tasks that were scheduled yet finished late.

        The paper's theorem guarantees this list is empty for RT-SADS (and
        for every scheduler built on the quantum-aware feasibility test);
        integration tests assert exactly that.
        """
        return [
            r
            for r in self.records.values()
            if r.was_scheduled
            and r.finished_at is not None
            and r.finished_at > r.task.deadline + EPSILON
        ]

    def dead_end_rate(self) -> float:
        """Fraction of phases that terminated in a dead end."""
        if not self.phases:
            return 0.0
        return sum(1 for p in self.phases if p.dead_end) / len(self.phases)

    def mean_depth(self) -> float:
        """Average schedule depth over *productive* phases.

        Phases that scheduled nothing (dead-ends, empty working sets) are
        excluded — including them dilutes the depth signal with zeros and
        hides exactly the representation difference the metric exists to
        show.
        """
        productive = [p for p in self.phases if p.scheduled > 0]
        if not productive:
            return 0.0
        return sum(p.max_depth for p in productive) / len(productive)

    def mean_processors_touched(self) -> float:
        """Average distinct processors used per productive phase schedule."""
        productive = [p for p in self.phases if p.scheduled > 0]
        if not productive:
            return 0.0
        return sum(p.processors_touched for p in productive) / len(productive)

    def total_scheduling_time(self) -> float:
        """Virtual time the host spent inside scheduling phases."""
        return sum(p.time_used for p in self.phases)

    def total_reclaimed_time(self) -> float:
        """Worst-case processor time reclaimed by early completions."""
        return sum(r.reclaimed_time for r in self.records.values())

    def gantt(self) -> Dict[int, List[tuple]]:
        """Per-processor ``(task_id, start, finish)`` triples, time-ordered."""
        lanes: Dict[int, List[tuple]] = {}
        for record in self.records.values():
            if record.status != STATUS_COMPLETED or record.processor is None:
                continue
            lanes.setdefault(record.processor, []).append(
                (record.task_id, record.started_at, record.finished_at)
            )
        for lane in lanes.values():
            lane.sort(key=lambda item: item[1])
        return lanes
