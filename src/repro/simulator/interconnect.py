"""Interconnect topology utilities for the distributed-memory machine.

The paper's machine (an Intel Paragon) is a 2-D mesh with wormhole routing,
which makes communication cost distance-independent — hence the uniform-C
model in :mod:`repro.core.affinity`.  This module supplies the topology
pieces used by the store-and-forward ablation and by anyone modelling
distance-sensitive costs: mesh coordinates, hop counts, and a convenience
constructor mapping a processor count to a near-square mesh like the
Paragon's backplane layout.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Tuple

from ..core.affinity import DistanceCommunicationModel, UniformCommunicationModel
from ..core.task import Task


@dataclass(frozen=True)
class MeshTopology:
    """A ``rows x cols`` 2-D mesh of processors, row-major numbered."""

    rows: int
    cols: int

    def __post_init__(self) -> None:
        if self.rows <= 0 or self.cols <= 0:
            raise ValueError("mesh dimensions must be positive")

    @property
    def size(self) -> int:
        return self.rows * self.cols

    def coordinates(self, processor: int) -> Tuple[int, int]:
        """(row, col) of a processor id."""
        if not 0 <= processor < self.size:
            raise ValueError(
                f"processor {processor} outside mesh of size {self.size}"
            )
        return divmod(processor, self.cols)[0], processor % self.cols

    def hops(self, source: int, destination: int) -> int:
        """Manhattan (X-Y routed) hop count between two processors."""
        r1, c1 = self.coordinates(source)
        r2, c2 = self.coordinates(destination)
        return abs(r1 - r2) + abs(c1 - c2)

    def diameter(self) -> int:
        """Maximum hop count across the mesh."""
        return (self.rows - 1) + (self.cols - 1)


def near_square_mesh(num_processors: int) -> MeshTopology:
    """Smallest near-square mesh holding ``num_processors`` nodes."""
    if num_processors <= 0:
        raise ValueError("num_processors must be positive")
    rows = int(math.isqrt(num_processors))
    while num_processors % rows:
        rows -= 1
    return MeshTopology(rows=rows, cols=num_processors // rows)


class MeshCommunicationModel(DistanceCommunicationModel):
    """Store-and-forward cost over a 2-D mesh (ablation of wormhole routing).

    Cost of a non-affine execution is ``per_hop_cost`` times the Manhattan
    distance to the nearest processor holding the task's data.
    """

    def __init__(self, per_hop_cost: float, topology: MeshTopology) -> None:
        super().__init__(per_hop_cost=per_hop_cost, num_processors=topology.size)
        self.topology = topology

    def cost(self, task: Task, processor: int) -> float:
        if task.has_affinity(processor) or not task.affinity:
            return 0.0
        hops = min(self.topology.hops(processor, home) for home in task.affinity)
        return self.per_hop_cost * hops


def wormhole_model(remote_cost: float) -> UniformCommunicationModel:
    """The paper's cut-through model; alias for discoverability."""
    return UniformCommunicationModel(remote_cost=remote_cost)
