"""The distributed-memory machine: workers plus a dedicated scheduling host.

Models the paper's Intel Paragon configuration: ``m`` working processors
with private local memories execute tasks, while one extra *host* processor
runs the scheduling algorithm continuously and concurrently (Section 4: "It
uses a dedicated processor to perform scheduling phases concurrently with
execution of real-time tasks on other processors").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from ..core.affinity import CommunicationModel, UniformCommunicationModel
from .processor import WorkerProcessor

#: Default constant communication cost ``C`` of a non-affine execution, in
#: tuple-check units (one checking iteration = 1.0).
DEFAULT_REMOTE_COST = 50.0


@dataclass
class MachineConfig:
    """Static description of the simulated machine."""

    num_workers: int
    comm: CommunicationModel = field(
        default_factory=lambda: UniformCommunicationModel(DEFAULT_REMOTE_COST)
    )

    def __post_init__(self) -> None:
        if self.num_workers <= 0:
            raise ValueError(
                f"num_workers must be positive, got {self.num_workers}"
            )


class Machine:
    """Runtime state of the machine: one worker object per processor."""

    def __init__(self, config: MachineConfig) -> None:
        self.config = config
        self.workers: List[WorkerProcessor] = [
            WorkerProcessor(processor_id) for processor_id in range(config.num_workers)
        ]

    @property
    def num_workers(self) -> int:
        return self.config.num_workers

    @property
    def comm(self) -> CommunicationModel:
        return self.config.comm

    def loads(self, now: float) -> List[float]:
        """``Load_k`` for every working processor at virtual time ``now``."""
        return [worker.load(now) for worker in self.workers]

    def all_idle(self) -> bool:
        return all(worker.is_idle for worker in self.workers)

    def total_completed(self) -> int:
        return sum(worker.completed_count for worker in self.workers)

    def utilization(self, elapsed: float) -> List[float]:
        """Fraction of ``elapsed`` each worker spent executing tasks."""
        if elapsed <= 0:
            return [0.0] * self.num_workers
        return [worker.busy_time / elapsed for worker in self.workers]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Machine(m={self.num_workers}, comm={self.comm!r})"
