"""Execution-time models: worst-case plans vs actual run times.

The scheduler plans with worst-case costs (the host's ``Execution_Cost``
estimates), but at execution time a task may finish early — an indexed probe
matches fewer tuples than the index's worst case, a scan short-circuits at
its first match.  When it does, the worker immediately starts its next
queued task, *reclaiming* the unused time, and the shrunken loads feed back
into the self-adjusting quantum.  This is the resource-reclaiming line of
work the paper builds on (Shen, Ramamritham & Stankovic, IEEE TPDS 1993,
the paper's reference [3]); the event-driven runtime implements its "basic
reclaiming" automatically.

An execution model maps a delivered schedule entry to the processor time it
actually consumes.  Actual cost may never exceed the planned worst case —
that would void the paper's correctness theorem — and the runtime enforces
this with :exc:`ExecutionModelError`.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from typing import Dict, Optional

from ..core.schedule import ScheduleEntry


class ExecutionModelError(RuntimeError):
    """An execution model produced a cost above the planned worst case."""


class ExecutionTimeModel(ABC):
    """Maps a delivered entry to the processor time it actually takes."""

    @abstractmethod
    def actual_cost(self, entry: ScheduleEntry) -> float:
        """Actual processor time consumed; must be in (0, planned]."""

    @property
    def name(self) -> str:
        return type(self).__name__


class WorstCaseExecution(ExecutionTimeModel):
    """Tasks consume exactly their planned worst case (the default)."""

    def actual_cost(self, entry: ScheduleEntry) -> float:
        return entry.total_cost


class ScaledExecution(ExecutionTimeModel):
    """Every task consumes a fixed fraction of its planned processing time.

    Communication cost is not scaled: the data transfer happens regardless
    of how quickly the checking process terminates.
    """

    def __init__(self, fraction: float) -> None:
        if not 0.0 < fraction <= 1.0:
            raise ValueError(f"fraction must be in (0, 1], got {fraction}")
        self.fraction = fraction

    def actual_cost(self, entry: ScheduleEntry) -> float:
        return entry.communication_cost + (
            self.fraction * entry.task.processing_time
        )


class StochasticExecution(ExecutionTimeModel):
    """Actual processing time uniform in [low, high] x planned (seeded).

    Models run-to-run variance in how early the checking process completes;
    the draw is deterministic per task id so repeated runs agree.
    """

    def __init__(self, low: float, high: float, seed: int = 0) -> None:
        if not 0.0 < low <= high <= 1.0:
            raise ValueError(
                f"need 0 < low <= high <= 1, got low={low} high={high}"
            )
        self.low = low
        self.high = high
        self.seed = seed

    def actual_cost(self, entry: ScheduleEntry) -> float:
        # Per-task deterministic stream: mix the model seed with the id.
        rng = random.Random(self.seed * 1_000_003 + entry.task.task_id)
        fraction = rng.uniform(self.low, self.high)
        return entry.communication_cost + (
            fraction * entry.task.processing_time
        )


class FirstMatchDatabaseExecution(ExecutionTimeModel):
    """Actual checking work of transactions that stop at their first match.

    For a "locate a record" query the node can stop scanning as soon as one
    tuple satisfies every predicate; the worst case (what the host planned
    with) only materializes when no tuple matches.  Costs are resolved
    against the *real* database contents via
    :meth:`repro.database.table.SubDatabase.probe_first_match`.
    """

    def __init__(self, database, transactions) -> None:
        self.database = database
        self._transactions: Dict[int, object] = {
            txn.txn_id: txn for txn in transactions
        }

    def actual_cost(self, entry: ScheduleEntry) -> float:
        txn = self._transactions.get(entry.task.task_id)
        if txn is None:
            return entry.total_cost
        target = txn.target_subdb(self.database.schema)
        subdb = self.database.subdatabases[target]
        _, tuples_checked = subdb.probe_first_match(txn.predicates)
        processing = self.database.config.check_cost * max(1, tuples_checked)
        # Never exceed the plan: the estimate is a worst case by
        # construction, but guard against configuration mismatches.
        processing = min(processing, entry.task.processing_time)
        return entry.communication_cost + processing


def resolve_actual_cost(
    model: Optional[ExecutionTimeModel], entry: ScheduleEntry
) -> float:
    """Actual cost under ``model`` (worst case when ``None``), validated."""
    if model is None:
        return entry.total_cost
    actual = model.actual_cost(entry)
    if actual <= 0.0:
        raise ExecutionModelError(
            f"{model.name} produced non-positive cost {actual} for task "
            f"{entry.task.task_id}"
        )
    if actual > entry.total_cost + 1e-9:
        raise ExecutionModelError(
            f"{model.name} produced cost {actual} above the planned worst "
            f"case {entry.total_cost} for task {entry.task.task_id}; this "
            "would void the deadline guarantee"
        )
    return actual
