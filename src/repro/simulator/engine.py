"""A small discrete-event simulation engine.

Dispatches events in timestamp order to handlers registered per event type,
advancing a monotonic virtual clock.  The engine is generic: the on-line
scheduling runtime registers handlers for arrivals, phase completions, and
task completions, but nothing here is scheduling-specific.

Two registration surfaces exist with different contracts:

* :meth:`SimulationEngine.subscribe` — the *dispatch* handler, exactly one
  per event type, the thing that advances simulation state;
* :meth:`SimulationEngine.add_observer` — any number of passive observers
  notified after each dispatch (``on_event_dispatched``) and on every clock
  advance (``on_clock_advanced``).  Observers exist for instrumentation:
  they must not schedule events or mutate simulation state, and the engine
  calls them after the dispatch handler returns so they see post-event
  state.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Type

from .events import EventQueue


class SimulationError(RuntimeError):
    """Raised on inconsistent simulator state (e.g. time moving backwards)."""


class SimulationObserver:
    """Optional base class for engine observers (all hooks default no-op).

    Observers are duck-typed — any object with either hook method works —
    but inheriting documents intent and supplies the missing hook.
    """

    def on_event_dispatched(self, now: float, event: Any) -> None:
        """Called after the dispatch handler for ``event`` returned."""

    def on_clock_advanced(self, previous: float, now: float) -> None:
        """Called whenever the virtual clock strictly advances."""


class SimulationEngine:
    """Virtual clock plus event dispatch loop."""

    def __init__(self) -> None:
        self._queue = EventQueue()
        self._handlers: Dict[Type, Callable[[float, Any], None]] = {}
        self._dispatch_observers: List[Callable[[float, Any], None]] = []
        self._clock_observers: List[Callable[[float, float], None]] = []
        self.now = 0.0
        self.events_dispatched = 0

    def subscribe(
        self, event_type: Type, handler: Callable[[float, Any], None]
    ) -> None:
        """Register the handler for one event type (one handler per type)."""
        if event_type in self._handlers:
            raise SimulationError(
                f"handler already registered for {event_type.__name__}"
            )
        self._handlers[event_type] = handler

    def add_observer(self, observer: Any) -> None:
        """Attach a passive observer (see :class:`SimulationObserver`).

        The observer may implement ``on_event_dispatched(now, event)``,
        ``on_clock_advanced(previous, now)``, or both; implementing neither
        is an error (the registration would be dead weight).
        """
        dispatched = getattr(observer, "on_event_dispatched", None)
        advanced = getattr(observer, "on_clock_advanced", None)
        if dispatched is None and advanced is None:
            raise SimulationError(
                "observer implements neither on_event_dispatched nor "
                "on_clock_advanced"
            )
        if dispatched is not None:
            self._dispatch_observers.append(dispatched)
        if advanced is not None:
            self._clock_observers.append(advanced)

    def remove_observer(self, observer: Any) -> None:
        """Detach a previously added observer (unknown observers are a no-op)."""
        dispatched = getattr(observer, "on_event_dispatched", None)
        advanced = getattr(observer, "on_clock_advanced", None)
        if dispatched in self._dispatch_observers:
            self._dispatch_observers.remove(dispatched)
        if advanced in self._clock_observers:
            self._clock_observers.remove(advanced)

    def schedule_at(self, time: float, event: Any) -> None:
        """Enqueue ``event`` for dispatch at absolute virtual ``time``."""
        if time < self.now - 1e-12:
            raise SimulationError(
                f"cannot schedule event at {time} before now={self.now}"
            )
        self._queue.push(max(time, self.now), event)

    def schedule_after(self, delay: float, event: Any) -> None:
        """Enqueue ``event`` for dispatch ``delay`` time units from now."""
        if delay < 0:
            raise SimulationError(f"delay must be non-negative, got {delay}")
        self._queue.push(self.now + delay, event)

    def step(self) -> bool:
        """Dispatch the next event; returns False when the queue is empty."""
        if not self._queue:
            return False
        time, event = self._queue.pop()
        if time < self.now - 1e-12:
            raise SimulationError(
                f"event time {time} precedes current time {self.now}"
            )
        previous = self.now
        self.now = max(self.now, time)
        if self._clock_observers and self.now > previous:
            for advanced in self._clock_observers:
                advanced(previous, self.now)
        handler = self._handlers.get(type(event))
        if handler is None:
            raise SimulationError(
                f"no handler registered for {type(event).__name__}"
            )
        handler(self.now, event)
        self.events_dispatched += 1
        if self._dispatch_observers:
            for dispatched in self._dispatch_observers:
                dispatched(self.now, event)
        return True

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Dispatch events until the queue drains, ``until``, or the cap."""
        dispatched = 0
        while self._queue:
            if until is not None:
                next_time = self._queue.peek_time()
                if next_time is not None and next_time > until:
                    previous = self.now
                    self.now = until
                    if self._clock_observers and self.now > previous:
                        for advanced in self._clock_observers:
                            advanced(previous, self.now)
                    return
            if max_events is not None and dispatched >= max_events:
                raise SimulationError(
                    f"exceeded max_events={max_events}; likely a runaway "
                    "simulation (check quantum/expiry configuration)"
                )
            self.step()
            dispatched += 1

    @property
    def pending_events(self) -> int:
        return len(self._queue)
