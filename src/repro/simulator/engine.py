"""A small discrete-event simulation engine.

Dispatches events in timestamp order to handlers registered per event type,
advancing a monotonic virtual clock.  The engine is generic: the on-line
scheduling runtime registers handlers for arrivals, phase completions, and
task completions, but nothing here is scheduling-specific.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional, Type

from .events import EventQueue


class SimulationError(RuntimeError):
    """Raised on inconsistent simulator state (e.g. time moving backwards)."""


class SimulationEngine:
    """Virtual clock plus event dispatch loop."""

    def __init__(self) -> None:
        self._queue = EventQueue()
        self._handlers: Dict[Type, Callable[[float, Any], None]] = {}
        self.now = 0.0
        self.events_dispatched = 0

    def subscribe(
        self, event_type: Type, handler: Callable[[float, Any], None]
    ) -> None:
        """Register the handler for one event type (one handler per type)."""
        if event_type in self._handlers:
            raise SimulationError(
                f"handler already registered for {event_type.__name__}"
            )
        self._handlers[event_type] = handler

    def schedule_at(self, time: float, event: Any) -> None:
        """Enqueue ``event`` for dispatch at absolute virtual ``time``."""
        if time < self.now - 1e-12:
            raise SimulationError(
                f"cannot schedule event at {time} before now={self.now}"
            )
        self._queue.push(max(time, self.now), event)

    def schedule_after(self, delay: float, event: Any) -> None:
        """Enqueue ``event`` for dispatch ``delay`` time units from now."""
        if delay < 0:
            raise SimulationError(f"delay must be non-negative, got {delay}")
        self._queue.push(self.now + delay, event)

    def step(self) -> bool:
        """Dispatch the next event; returns False when the queue is empty."""
        if not self._queue:
            return False
        time, event = self._queue.pop()
        if time < self.now - 1e-12:
            raise SimulationError(
                f"event time {time} precedes current time {self.now}"
            )
        self.now = max(self.now, time)
        handler = self._handlers.get(type(event))
        if handler is None:
            raise SimulationError(
                f"no handler registered for {type(event).__name__}"
            )
        handler(self.now, event)
        self.events_dispatched += 1
        return True

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Dispatch events until the queue drains, ``until``, or the cap."""
        dispatched = 0
        while self._queue:
            if until is not None:
                next_time = self._queue.peek_time()
                if next_time is not None and next_time > until:
                    self.now = until
                    return
            if max_events is not None and dispatched >= max_events:
                raise SimulationError(
                    f"exceeded max_events={max_events}; likely a runaway "
                    "simulation (check quantum/expiry configuration)"
                )
            self.step()
            dispatched += 1

    @property
    def pending_events(self) -> int:
        return len(self._queue)
