"""Event types and the time-ordered event queue of the simulator.

The runtime is a discrete-event simulation: every state change is an event
with a timestamp, dispatched in (time, insertion) order.  Ties in time are
broken by insertion sequence, which the runtime relies on (e.g. all bursty
arrivals at ``t = 0`` are processed before the host's wake-up event that
opens the first scheduling phase).
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass
from typing import Any, Optional, Tuple

from ..core.phase import PhaseResult
from ..core.task import Task


@dataclass(frozen=True)
class TaskArrived:
    """An aperiodic task has reached the host (scheduling) processor."""

    task: Task


@dataclass(frozen=True)
class HostWake:
    """Deferred request for the host to open a scheduling phase.

    Scheduled instead of opening a phase inline so that all same-time
    arrivals are admitted into the batch first.
    """


@dataclass(frozen=True)
class ScheduleDelivered:
    """Scheduling phase ``j`` ended; its schedule reaches the ready queues."""

    result: PhaseResult


@dataclass(frozen=True)
class TaskFinished:
    """A working processor completed its current task."""

    processor: int
    task_id: int


@dataclass(frozen=True)
class ProcessorFailed:
    """A working processor crashes (fail-stop), losing its in-flight task.

    Queued-but-not-started work survives (the schedule is host-side state)
    and is returned to the batch for rescheduling on the remaining
    processors.
    """

    processor: int


class EventQueue:
    """Min-heap of timestamped events with stable same-time ordering."""

    def __init__(self) -> None:
        self._heap: list = []
        self._counter = itertools.count()

    def push(self, time: float, event: Any) -> None:
        if time < 0:
            raise ValueError(f"event time must be non-negative, got {time}")
        heapq.heappush(self._heap, (time, next(self._counter), event))

    def pop(self) -> Tuple[float, Any]:
        if not self._heap:
            raise IndexError("pop from empty event queue")
        time, _, event = heapq.heappop(self._heap)
        return time, event

    def peek_time(self) -> Optional[float]:
        if not self._heap:
            return None
        return self._heap[0][0]

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)
