"""Search-kernel registry: how one phase's candidate arithmetic executes.

A *kernel* is an interchangeable implementation of the depth-first phase
search (:func:`repro.core.search.run_search`): same tree, same candidates,
same schedules — different machinery for evaluating them.  The registry
mirrors the scheduler registry (:mod:`repro.core.registry`) and the backend
registry (:mod:`repro.runtime.backend`): built-ins resolve lazily, third
parties call :func:`register_kernel`, and every experiment, figure, backend,
and CLI flag can name any registered kernel immediately.

Two kernels ship with the repo:

* ``scalar`` (default) — the zero-dependency hot path: the optimized
  per-vertex expanders of :mod:`repro.core.representations` driven by
  :func:`repro.core.search.run_search`.
* ``vectorized`` — the batch kernel of :mod:`repro.core.vectorized`:
  evaluates whole candidate frontiers as numpy arrays.  Requires the
  optional ``fast`` extra (``pip install "repro[fast]"``); naming it on a
  host without numpy raises a clean :class:`ImportError`.

The alias ``auto`` resolves to ``vectorized`` when numpy is importable and
falls back to ``scalar`` otherwise, so portable configs can opt into speed
without a hard dependency.

Every kernel is **bit-identical** by contract: identical schedules,
identical search counters, identical budget consumption, identical
tie-breaking (stable argmin over ``(value, generation order)``), proven by
``tests/differential/test_kernel_differential.py`` and the golden fixtures.
See ``docs/PERFORMANCE.md`` for the decision table and measured rates.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Callable, Dict, Optional, Union

from .search import SearchBudget, SearchOutcome, Expander, PhaseContext, run_search

#: Kernel names every installation can *name* (CLI choices, config
#: validation).  ``vectorized`` may still fail to resolve without numpy;
#: ``auto`` never fails.
KERNEL_NAMES = ("scalar", "vectorized", "auto")

#: The kernel used when no explicit choice is made anywhere.
DEFAULT_KERNEL = "scalar"

#: Message raised when the vectorized kernel is requested without numpy.
_NUMPY_HINT = (
    "the 'vectorized' search kernel requires numpy, which is not "
    "installed; install the optional extra with `pip install "
    "\"repro[fast]\"` or select `kernel=\"scalar\"` (the default, "
    "dependency-free kernel) / `kernel=\"auto\"` (falls back to scalar)"
)


class SearchKernel(ABC):
    """One interchangeable implementation of the phase search.

    ``search`` must honour the exact contract of
    :func:`repro.core.search.run_search`: same expansion order, same
    candidate set, same budget charging, same
    :class:`~repro.core.search.SearchStats` counters, and byte-identical
    tie-breaking — kernels trade machinery, never schedules.
    """

    #: Registry name, set by concrete kernels.
    name: str = "kernel"

    @abstractmethod
    def search(
        self,
        ctx: PhaseContext,
        expander: Expander,
        budget: SearchBudget,
        max_candidates: Optional[int] = None,
        max_iterations: Optional[int] = None,
    ) -> SearchOutcome:
        """Run one phase's depth-first search and return its outcome."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        """Class plus registry name, for logs and error messages."""
        return f"{type(self).__name__}(name={self.name!r})"


class ScalarKernel(SearchKernel):
    """The default kernel: the pure-Python optimized hot path.

    A thin adapter over :func:`repro.core.search.run_search`, kept so the
    scalar path and third-party kernels share one calling convention.
    """

    name = "scalar"

    def search(
        self,
        ctx: PhaseContext,
        expander: Expander,
        budget: SearchBudget,
        max_candidates: Optional[int] = None,
        max_iterations: Optional[int] = None,
    ) -> SearchOutcome:
        """Delegate to :func:`repro.core.search.run_search` unchanged."""
        return run_search(
            ctx,
            expander,
            budget,
            max_candidates=max_candidates,
            max_iterations=max_iterations,
        )


_REGISTRY: Dict[str, Callable[[], SearchKernel]] = {}

#: Singletons per registry name, so repeated resolution is allocation-free
#: and kernel-internal caches (scratch buffers) persist across phases.
_INSTANCES: Dict[str, SearchKernel] = {}


def register_kernel(name: str, factory: Callable[[], SearchKernel]) -> None:
    """Register (or replace) a kernel factory under ``name``."""
    if not name:
        raise ValueError("kernel name must be a non-empty string")
    _REGISTRY[name] = factory
    _INSTANCES.pop(name, None)


def numpy_available() -> bool:
    """Whether the optional numpy dependency is importable."""
    try:
        import numpy  # noqa: F401
    except ImportError:
        return False
    return True


def kernel_available(name: str) -> bool:
    """Whether :func:`get_kernel` would succeed for ``name``."""
    if name in _REGISTRY or name in ("scalar", "auto"):
        return True
    if name == "vectorized":
        return numpy_available()
    return False


def _build_vectorized() -> SearchKernel:
    """Import and build the numpy kernel, translating the ImportError."""
    try:
        from . import vectorized
    except ImportError as exc:
        raise ImportError(_NUMPY_HINT) from exc
    return vectorized.VectorizedKernel()


def get_kernel(name: Optional[str] = None) -> SearchKernel:
    """Resolve a kernel name to a (cached) kernel instance.

    ``None`` resolves to :data:`DEFAULT_KERNEL`.  ``"auto"`` resolves to
    ``vectorized`` when numpy is importable and silently falls back to
    ``scalar`` otherwise — the graceful-degradation path portable configs
    use.  Naming ``"vectorized"`` explicitly on a host without numpy
    raises :class:`ImportError` with an actionable message instead.
    """
    if name is None:
        name = DEFAULT_KERNEL
    if name == "auto":
        name = "vectorized" if numpy_available() else "scalar"
    cached = _INSTANCES.get(name)
    if cached is not None:
        return cached
    if name in _REGISTRY:
        kernel = _REGISTRY[name]()
    elif name == "scalar":
        kernel = ScalarKernel()
    elif name == "vectorized":
        kernel = _build_vectorized()
    else:
        known = sorted(set(_REGISTRY) | set(KERNEL_NAMES))
        raise ValueError(f"unknown kernel {name!r}; choose from {known}")
    _INSTANCES[name] = kernel
    return kernel


def resolve_kernel(
    kernel: Union[str, SearchKernel, None]
) -> Optional[SearchKernel]:
    """Normalize a kernel argument: name, instance, or None (= unset)."""
    if kernel is None or isinstance(kernel, SearchKernel):
        return kernel
    return get_kernel(kernel)


def registered_kernels() -> tuple:
    """Every currently resolvable name: built-ins plus third-party."""
    return tuple(dict.fromkeys(list(KERNEL_NAMES) + sorted(_REGISTRY)))
