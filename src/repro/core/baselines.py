"""Non-search baselines implementing the same scheduler interface.

These enrich the comparison beyond the paper's two contenders:

* :class:`GreedyEDFScheduler` — earliest-deadline-first list scheduling with
  minimum-completion-time processor choice and no backtracking.
* :class:`MyopicScheduler` — a Ramamritham/Stankovic-style myopic heuristic
  (bounded feasibility-check window, weighted heuristic ``H = d + W * est``),
  the family the paper says inspired D-COLS.
* :class:`RandomScheduler` — random task order, random feasible processor;
  the sanity-check floor.

All three charge the same virtual per-vertex cost for every (task,
processor) pair they evaluate and honour the same quantum-aware feasibility
bound, so the paper's correctness theorem holds for them too.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence

from .affinity import CommunicationModel
from .feasibility import projected_offsets
from .phase import MIN_PHASE_TIME, PhaseResult
from .quantum import QuantumPolicy, SelfAdjustingQuantum
from .registry import SchedulerContext, register_scheduler
from .schedule import Schedule, ScheduleEntry
from ..observability import get_instrumentation
from .scheduler import (
    DEFAULT_PER_VERTEX_COST,
    DEFAULT_PHASE_OVERHEAD_FACTOR,
    DEFAULT_QUANTUM_CAP_FACTOR,
    Scheduler,
    phase_overhead,
    record_phase_metrics,
    useful_search_time,
)
from .search import SearchStats, VirtualTimeBudget
from .task import Task


class _ListScheduler(Scheduler):
    """Shared machinery for the one-pass (no backtracking) baselines."""

    def __init__(
        self,
        comm: CommunicationModel,
        quantum_policy: Optional[QuantumPolicy] = None,
        per_vertex_cost: float = DEFAULT_PER_VERTEX_COST,
        quantum_cap_factor: Optional[float] = DEFAULT_QUANTUM_CAP_FACTOR,
        phase_overhead_factor: float = DEFAULT_PHASE_OVERHEAD_FACTOR,
        name: str = "list-scheduler",
    ) -> None:
        if per_vertex_cost <= 0:
            raise ValueError("per_vertex_cost must be positive")
        if phase_overhead_factor < 0:
            raise ValueError("phase_overhead_factor must be non-negative")
        self.comm = comm
        self.quantum_policy = quantum_policy or SelfAdjustingQuantum()
        self.per_vertex_cost = per_vertex_cost
        self.quantum_cap_factor = quantum_cap_factor
        self.phase_overhead_factor = phase_overhead_factor
        self.name = name

    def _phase_budget(
        self, batch_size: int, num_processors: int, quantum: float
    ) -> VirtualTimeBudget:
        """Budget for the phase window: quantum plus pre-paid overhead."""
        overhead = phase_overhead(
            batch_size=batch_size,
            num_processors=num_processors,
            per_vertex_cost=self.per_vertex_cost,
            overhead_factor=self.phase_overhead_factor,
        )
        budget = VirtualTimeBudget(
            quantum=quantum + overhead, per_vertex_cost=self.per_vertex_cost
        )
        budget.consume(overhead)
        return budget

    def plan_quantum(
        self, batch: Sequence[Task], loads: Sequence[float], now: float
    ) -> float:
        quantum = self.quantum_policy.quantum(batch, loads, now)
        if self.quantum_cap_factor is not None:
            cap = useful_search_time(
                batch_size=len(batch),
                num_processors=len(loads),
                per_vertex_cost=self.per_vertex_cost,
                cap_factor=self.quantum_cap_factor,
            )
            quantum = min(quantum, max(cap, self.quantum_policy.min_quantum))
        return quantum

    def _task_order(self, batch: Sequence[Task]) -> List[Task]:
        """Order in which tasks are considered for assignment."""
        return sorted(batch, key=lambda t: (t.deadline, t.task_id))

    def _pick_processor(
        self,
        task: Task,
        offsets: List[float],
        bound: float,
        budget: VirtualTimeBudget,
        stats: SearchStats,
    ) -> Optional[tuple]:
        """Choose a feasible processor; returns (proc, comm_cost, end)."""
        best = None
        budget.charge(len(offsets))
        stats.vertices_generated += len(offsets)
        for processor, offset in enumerate(offsets):
            comm_cost = self.comm.cost(task, processor)
            end = offset + task.processing_time + comm_cost
            if bound + end > task.deadline + 1e-9:
                stats.feasibility_rejections += 1
                continue
            if best is None or end < best[2]:
                best = (processor, comm_cost, end)
        return best

    def schedule_phase(
        self,
        batch: Sequence[Task],
        loads: Sequence[float],
        now: float,
        quantum: float,
    ) -> PhaseResult:
        budget = self._phase_budget(len(batch), len(loads), quantum)
        phase_window = budget.quantum  # quantum + phase overhead
        offsets = list(projected_offsets(loads, phase_window))
        initial = tuple(offsets)
        bound = now + phase_window
        stats = SearchStats()
        schedule = Schedule()
        # Same necessary-condition pre-filter as run_phase: drop tasks that
        # cannot meet their deadline even at zero wait this phase.
        viable = [
            t
            for t in self._task_order(batch)
            if bound + t.processing_time <= t.deadline + 1e-9
        ]
        for task in viable:
            if budget.exhausted():
                break
            stats.task_probes += 1
            choice = self._pick_processor(task, offsets, bound, budget, stats)
            if choice is None:
                continue
            processor, comm_cost, end = choice
            offsets[processor] = end
            schedule.append(
                ScheduleEntry(
                    task=task,
                    processor=processor,
                    communication_cost=comm_cost,
                    scheduled_end=end,
                )
            )
        stats.expansions = len(schedule)
        stats.max_depth = len(schedule)
        stats.processors_touched = len(schedule.processors())
        stats.complete = len(schedule) == len(batch)
        stats.prefilter_rejected = len(batch) - len(viable)
        result = PhaseResult(
            schedule=schedule,
            time_used=min(max(budget.used(), MIN_PHASE_TIME), phase_window),
            quantum=phase_window,
            phase_start=now,
            stats=stats,
            initial_offsets=initial,
        )
        obs = self.instrumentation or get_instrumentation()
        if obs.enabled:
            record_phase_metrics(obs, self.name, stats, phase_window, len(batch))
        return result


class GreedyEDFScheduler(_ListScheduler):
    """EDF order, minimum-completion-time processor, no backtracking."""

    def __init__(
        self,
        comm: CommunicationModel,
        quantum_policy: Optional[QuantumPolicy] = None,
        per_vertex_cost: float = DEFAULT_PER_VERTEX_COST,
        **kwargs,
    ) -> None:
        super().__init__(
            comm, quantum_policy, per_vertex_cost, name="Greedy-EDF", **kwargs
        )


class RandomScheduler(_ListScheduler):
    """Random task order and random feasible processor (seeded)."""

    def __init__(
        self,
        comm: CommunicationModel,
        quantum_policy: Optional[QuantumPolicy] = None,
        per_vertex_cost: float = DEFAULT_PER_VERTEX_COST,
        seed: int = 0,
        **kwargs,
    ) -> None:
        super().__init__(
            comm, quantum_policy, per_vertex_cost, name="Random", **kwargs
        )
        self.seed = seed
        self._rng = random.Random(seed)

    def reset(self) -> None:
        self._rng = random.Random(self.seed)

    def _task_order(self, batch: Sequence[Task]) -> List[Task]:
        tasks = list(batch)
        self._rng.shuffle(tasks)
        return tasks

    def _pick_processor(self, task, offsets, bound, budget, stats):
        budget.charge(len(offsets))
        stats.vertices_generated += len(offsets)
        feasible = []
        for processor, offset in enumerate(offsets):
            comm_cost = self.comm.cost(task, processor)
            end = offset + task.processing_time + comm_cost
            if bound + end <= task.deadline + 1e-9:
                feasible.append((processor, comm_cost, end))
        if not feasible:
            return None
        return self._rng.choice(feasible)


class MyopicScheduler(_ListScheduler):
    """Myopic heuristic scheduling (Ramamritham, Stankovic & Zhao style).

    At each step only the ``window`` earliest-deadline unassigned tasks are
    considered; the one minimizing ``H = d + weight * earliest_start`` is
    assigned to its earliest-finishing feasible processor.  This is the
    uniprocessor/shared-memory technique whose sequence-oriented extension
    the paper critiques, included here as an additional reference point.
    """

    def __init__(
        self,
        comm: CommunicationModel,
        quantum_policy: Optional[QuantumPolicy] = None,
        per_vertex_cost: float = DEFAULT_PER_VERTEX_COST,
        window: int = 8,
        weight: float = 1.0,
        **kwargs,
    ) -> None:
        if window <= 0:
            raise ValueError("window must be positive")
        if weight < 0:
            raise ValueError("weight must be non-negative")
        super().__init__(
            comm, quantum_policy, per_vertex_cost, name="Myopic", **kwargs
        )
        self.window = window
        self.weight = weight

    def schedule_phase(
        self,
        batch: Sequence[Task],
        loads: Sequence[float],
        now: float,
        quantum: float,
    ) -> PhaseResult:
        budget = self._phase_budget(len(batch), len(loads), quantum)
        phase_window = budget.quantum  # quantum + phase overhead
        offsets = list(projected_offsets(loads, phase_window))
        initial = tuple(offsets)
        bound = now + phase_window
        stats = SearchStats()
        schedule = Schedule()
        remaining = [
            t
            for t in sorted(batch, key=lambda t: (t.deadline, t.task_id))
            if bound + t.processing_time <= t.deadline + 1e-9
        ]
        prefiltered = len(remaining)
        while remaining and not budget.exhausted():
            best = None  # (H, task_pos, processor, comm_cost, end)
            lookahead = remaining[: self.window]
            for position, task in enumerate(lookahead):
                stats.task_probes += 1
                budget.charge(len(offsets))
                stats.vertices_generated += len(offsets)
                for processor, offset in enumerate(offsets):
                    comm_cost = self.comm.cost(task, processor)
                    end = offset + task.processing_time + comm_cost
                    if bound + end > task.deadline + 1e-9:
                        stats.feasibility_rejections += 1
                        continue
                    start = end - task.processing_time - comm_cost
                    heuristic = task.deadline + self.weight * start
                    key = (heuristic, end)
                    if best is None or key < best[0]:
                        best = (key, position, processor, comm_cost, end)
            if best is None:
                # No window task is feasible anywhere: the myopic strategy
                # discards the head (tightest) task and retries.
                remaining.pop(0)
                stats.backtracks += 1
                continue
            _, position, processor, comm_cost, end = best
            task = remaining.pop(position)
            offsets[processor] = end
            schedule.append(
                ScheduleEntry(
                    task=task,
                    processor=processor,
                    communication_cost=comm_cost,
                    scheduled_end=end,
                )
            )
            stats.expansions += 1
        stats.max_depth = len(schedule)
        stats.processors_touched = len(schedule.processors())
        stats.complete = len(schedule) == len(batch)
        stats.prefilter_rejected = len(batch) - prefiltered
        result = PhaseResult(
            schedule=schedule,
            time_used=min(max(budget.used(), MIN_PHASE_TIME), phase_window),
            quantum=phase_window,
            phase_start=now,
            stats=stats,
            initial_offsets=initial,
        )
        obs = self.instrumentation or get_instrumentation()
        if obs.enabled:
            record_phase_metrics(obs, self.name, stats, phase_window, len(batch))
        return result


def _build_greedy_edf(context: "SchedulerContext") -> GreedyEDFScheduler:
    return GreedyEDFScheduler(
        comm=context.comm,
        quantum_policy=context.quantum_policy,
        per_vertex_cost=context.per_vertex_cost,
    )


def _build_myopic(context: "SchedulerContext") -> MyopicScheduler:
    return MyopicScheduler(
        comm=context.comm,
        quantum_policy=context.quantum_policy,
        per_vertex_cost=context.per_vertex_cost,
    )


def _build_random(context: "SchedulerContext") -> RandomScheduler:
    return RandomScheduler(
        comm=context.comm,
        quantum_policy=context.quantum_policy,
        per_vertex_cost=context.per_vertex_cost,
        seed=context.seed,
    )


register_scheduler("greedy_edf", _build_greedy_edf)
register_scheduler("myopic", _build_myopic)
register_scheduler("random", _build_random)
