"""The RT-SADS feasibility test (paper Figure 4) and projected loads.

A task assignment ``(T_l -> P_k)`` extends a feasible partial schedule into
another feasible partial schedule iff::

    t_c + RQ_s(j) + se_lk <= d_l

where ``t_c`` is the current time, ``RQ_s(j) = Q_s(j) - (t_c - t_s)`` is the
remaining scheduling time of phase ``j``, and ``se_lk`` is the scheduled end
time of ``T_l`` on ``P_k`` measured from the end of the phase.  Because
``t_c + RQ_s(j)`` is the constant ``t_s + Q_s(j)`` throughout the phase, the
test reduces to comparing against a fixed *phase-end bound*; we expose both
forms.  Accounting for the scheduling time in this way is what makes the
paper's correctness theorem hold: a scheduled task can never miss its
deadline because of scheduling overhead.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from .task import Task

#: Numeric slop applied to all feasibility comparisons.
EPSILON = 1e-9


def phase_end_bound(phase_start: float, quantum: float) -> float:
    """Upper bound ``t_s + Q_s(j)`` on the end time of the current phase."""
    return phase_start + quantum


def remaining_quantum(phase_start: float, quantum: float, now: float) -> float:
    """``RQ_s(j) = Q_s(j) - (t_c - t_s)``, clamped at zero."""
    return max(0.0, quantum - (now - phase_start))


def is_feasible_assignment(
    task: Task,
    scheduled_end: float,
    now: float,
    phase_start: float,
    quantum: float,
) -> bool:
    """The literal Figure-4 test: ``t_c + RQ_s(j) + se_lk <= d_l``."""
    rqs = remaining_quantum(phase_start, quantum, now)
    return now + rqs + scheduled_end <= task.deadline + EPSILON


def is_feasible_against_bound(
    task: Task, scheduled_end: float, bound: float
) -> bool:
    """Equivalent constant-bound form used in the search hot loop.

    The optimized expanders in :mod:`repro.core.representations` inline this
    exact comparison (same operand order, same ``EPSILON``) so their verdicts
    stay bit-identical to the frozen reference; keep the expression in sync
    if it ever changes — the differential harness will catch a drift.
    """
    return bound + scheduled_end <= task.deadline + EPSILON


def projected_offsets(
    loads: Sequence[float], quantum: float
) -> tuple[float, ...]:
    """Per-processor load projected to the end of the phase.

    While the scheduling processor runs phase ``j`` for up to ``Q_s(j)``,
    each working processor drains up to ``Q_s(j)`` of its queued work, so the
    earliest a newly delivered task can start on ``P_k`` is
    ``max(0, Load_k(j-1) - Q_s(j))`` after the phase ends.  This is the
    ``Load_k(j-1) - Q_s(j)`` term of the paper's ``ce_k`` (Section 4.4),
    floored at zero because a processor cannot have negative backlog.
    """
    return tuple(max(0.0, load - quantum) for load in loads)


def schedule_is_deadline_safe(
    finish_times: Mapping[int, float], tasks: Mapping[int, Task]
) -> bool:
    """Whether every executed task finished at or before its deadline.

    Used by tests asserting the paper's theorem: tasks scheduled by RT-SADS
    (or any scheduler using this feasibility test) meet their deadlines once
    executed.
    """
    for task_id, finish in finish_times.items():
        if finish > tasks[task_id].deadline + EPSILON:
            return False
    return True
