"""Allocation of scheduling time: the quantum policies (paper Section 4.2).

RT-SADS self-adjusts the time ``Q_s(j)`` allocated to scheduling phase ``j``
with the criterion of Figure 3::

    Q_s(j) <= max(Min_Slack, Min_Load)
    Min_Slack = min slack over tasks in Batch(j)
    Min_Load  = min remaining load over working processors

Long quanta are granted when slacks are large or processors are busy (more
time to optimize); short quanta when slacks are small or a processor is about
to idle (honor deadlines, reduce idle time).  Fixed and single-term policies
are provided for the quantum ablation (A1).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Optional, Sequence

from .task import Task

#: Smallest quantum any policy will grant.  A zero quantum would forbid even
#: one vertex evaluation and stall the runtime; a handful of evaluations is
#: always allowed (10 vertices at the default per-vertex cost of 0.1).
DEFAULT_MIN_QUANTUM = 1.0


class QuantumPolicy(ABC):
    """Decides ``Q_s(j)`` from the batch, processor loads, and current time."""

    def __init__(
        self,
        min_quantum: float = DEFAULT_MIN_QUANTUM,
        max_quantum: Optional[float] = None,
    ) -> None:
        if min_quantum <= 0:
            raise ValueError("min_quantum must be positive")
        if max_quantum is not None and max_quantum < min_quantum:
            raise ValueError("max_quantum must be >= min_quantum")
        self.min_quantum = min_quantum
        self.max_quantum = max_quantum

    @abstractmethod
    def _raw_quantum(
        self, batch: Sequence[Task], loads: Sequence[float], now: float
    ) -> float:
        """Policy-specific quantum before clamping."""

    def quantum(
        self, batch: Sequence[Task], loads: Sequence[float], now: float
    ) -> float:
        """Clamped ``Q_s(j)`` for a phase starting at ``now``."""
        value = self._raw_quantum(batch, loads, now)
        value = max(value, self.min_quantum)
        if self.max_quantum is not None:
            value = min(value, self.max_quantum)
        return value

    @property
    def name(self) -> str:
        return type(self).__name__


def min_slack(batch: Sequence[Task], now: float) -> float:
    """``Min_Slack``: smallest slack among batch tasks, floored at zero."""
    if not batch:
        return 0.0
    return max(0.0, min(task.slack(now) for task in batch))


def min_load(loads: Sequence[float]) -> float:
    """``Min_Load``: smallest remaining load among working processors."""
    if not loads:
        return 0.0
    return min(loads)


class SelfAdjustingQuantum(QuantumPolicy):
    """The paper's criterion: ``Q_s(j) = max(Min_Slack, Min_Load)``.

    ``Min_Slack`` caps scheduling time so no batch task's deadline is burned
    by scheduling overhead; when the shortest processor queue exceeds it,
    waiting tasks would miss their deadlines anyway, so the quantum is
    extended to ``Min_Load``, buying schedule quality at no compliance cost.
    """

    def _raw_quantum(
        self, batch: Sequence[Task], loads: Sequence[float], now: float
    ) -> float:
        return max(min_slack(batch, now), min_load(loads))


class SlackOnlyQuantum(QuantumPolicy):
    """Ablation: ``Q_s(j) = Min_Slack`` (ignores processor loads)."""

    def _raw_quantum(
        self, batch: Sequence[Task], loads: Sequence[float], now: float
    ) -> float:
        return min_slack(batch, now)


class LoadOnlyQuantum(QuantumPolicy):
    """Ablation: ``Q_s(j) = Min_Load`` (ignores task slacks)."""

    def _raw_quantum(
        self, batch: Sequence[Task], loads: Sequence[float], now: float
    ) -> float:
        return min_load(loads)


class FixedQuantum(QuantumPolicy):
    """Ablation: a constant quantum, the non-adaptive strawman."""

    def __init__(self, value: float) -> None:
        if value <= 0:
            raise ValueError("fixed quantum must be positive")
        super().__init__(min_quantum=value, max_quantum=value)
        self.value = value

    def _raw_quantum(
        self, batch: Sequence[Task], loads: Sequence[float], now: float
    ) -> float:
        return self.value


def get_quantum_policy(name: str, **kwargs) -> QuantumPolicy:
    """Factory by short name, used by experiment configs and the CLI."""
    policies = {
        "self_adjusting": SelfAdjustingQuantum,
        "slack_only": SlackOnlyQuantum,
        "load_only": LoadOnlyQuantum,
        "fixed": FixedQuantum,
    }
    try:
        cls = policies[name]
    except KeyError:
        raise ValueError(
            f"unknown quantum policy {name!r}; choose from {sorted(policies)}"
        ) from None
    return cls(**kwargs)
