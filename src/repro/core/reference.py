"""Frozen reference implementation of the search hot path.

This module is a verbatim retention of the evaluator, candidate-list,
expander, and search-loop logic *before* the hot-path optimizations landed
in :mod:`repro.core.search`, :mod:`repro.core.cost`, and
:mod:`repro.core.representations`:

* :class:`ReferenceCandidateList` — the flat pre-sorted stack the CL used
  to be (blocks are sorted eagerly; ``push_block`` expects sorted input).
* :class:`ReferenceLoadBalancingEvaluator` — recomputes
  ``CE_i = max_k ce_k`` with a full ``max(vertex.proc_offsets)`` scan per
  candidate instead of reading the incrementally maintained
  ``vertex.max_offset``.
* :class:`ReferenceAssignmentOrientedExpander` /
  :class:`ReferenceSequenceOrientedExpander` — per-candidate virtual
  dispatch into the communication model (no per-phase ``c_lk`` row cache),
  the full Figure-4 test on every candidate (no best-case pruning), and an
  eager sort of every successor block.
* :func:`run_search` / :func:`run_phase` — the same drivers, wired to the
  reference CL.

**Do not optimize this module.**  Its purpose is to stay slow and obviously
correct: the differential harness under ``tests/differential/`` runs both
implementations over a seeded workload matrix and asserts bit-identical
schedules, guarantee sets, and vertex-expansion traces.  The shared pieces
(:class:`repro.core.search.Vertex`, :func:`repro.core.search.make_child`,
:class:`repro.core.search.PhaseContext`, the budgets) are deliberately *not*
duplicated — they carry state both sides must agree on, and the budget
boundary fix is pinned by its own unit tests rather than by freezing the
old off-by-one behaviour.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

from .affinity import CommunicationModel
from .cost import VertexEvaluator
from .feasibility import projected_offsets
from .phase import MIN_PHASE_TIME, PhaseResult
from .quantum import QuantumPolicy
from .scheduler import DEFAULT_PER_VERTEX_COST, SearchScheduler
from .search import (
    Expander,
    Expansion,
    PhaseContext,
    SearchBudget,
    SearchOutcome,
    SearchStats,
    Vertex,
    VirtualTimeBudget,
    make_child,
    make_root,
)
from .task import Task


class ReferenceLoadBalancingEvaluator(VertexEvaluator):
    """The original ``CE`` evaluator: full ``max`` scan per candidate."""

    TIE_WEIGHT = 1e-6

    def evaluate(self, ctx: "PhaseContext", vertex: "Vertex") -> float:
        return max(vertex.proc_offsets) + self.TIE_WEIGHT * vertex.scheduled_end


class ReferenceEarliestFinishEvaluator(VertexEvaluator):
    """The original minimum-completion-time evaluator."""

    def evaluate(self, ctx: "PhaseContext", vertex: "Vertex") -> float:
        return vertex.scheduled_end


class ReferenceCandidateList:
    """The original CL: a flat depth-first stack of pre-sorted blocks."""

    def __init__(self, max_size: Optional[int] = None) -> None:
        if max_size is not None and max_size <= 0:
            raise ValueError("max_size must be positive when given")
        self._stack: List[Vertex] = []
        self.max_size = max_size
        self.dropped = 0

    def push_block(self, block: Iterable[Vertex]) -> None:
        ordered = list(block)
        # Best candidate must pop first, so append the block reversed.
        self._stack.extend(reversed(ordered))
        if self.max_size is not None and len(self._stack) > self.max_size:
            overflow = len(self._stack) - self.max_size
            del self._stack[:overflow]
            self.dropped += overflow

    def pop(self) -> Optional[Vertex]:
        if not self._stack:
            return None
        return self._stack.pop()

    def __len__(self) -> int:
        return len(self._stack)

    def __bool__(self) -> bool:
        return bool(self._stack)


def _unscheduled_indices(vertex: Vertex, n: int):
    mask = vertex.scheduled_mask
    for index in range(n):
        if not (mask >> index) & 1:
            yield index


class ReferenceAssignmentOrientedExpander(Expander):
    """The original RT-SADS expander: no row cache, no best-case prune."""

    def __init__(self, max_task_probes: Optional[int] = None) -> None:
        if max_task_probes is not None and max_task_probes <= 0:
            raise ValueError("max_task_probes must be positive when given")
        self.max_task_probes = max_task_probes

    def successors(
        self,
        vertex: Vertex,
        ctx: PhaseContext,
        budget: SearchBudget,
        stats: SearchStats,
    ) -> Expansion:
        probes = 0
        hopeless_mask = 0
        truncated = False
        comm_cost = ctx.comm.cost
        evaluate = ctx.evaluator.evaluate
        for index in _unscheduled_indices(vertex, ctx.n):
            if self.max_task_probes is not None and probes >= self.max_task_probes:
                truncated = True
                break
            if probes and budget.exhausted():
                truncated = True
                break
            probes += 1
            stats.task_probes += 1
            task = ctx.tasks[index]
            candidates: List[Vertex] = []
            budget.charge(ctx.num_processors)
            stats.vertices_generated += ctx.num_processors
            for processor in range(ctx.num_processors):
                comm = comm_cost(task, processor)
                total = task.processing_time + comm
                scheduled_end = vertex.proc_offsets[processor] + total
                if ctx.is_feasible(task, scheduled_end):
                    child = make_child(vertex, index, processor, total, comm)
                    child.value = evaluate(ctx, child)
                    candidates.append(child)
            stats.feasibility_rejections += ctx.num_processors - len(candidates)
            if candidates:
                if hopeless_mask:
                    for child in candidates:
                        child.scheduled_mask |= hopeless_mask
                candidates.sort(key=lambda v: v.value)
                return Expansion(successors=candidates)
            hopeless_mask |= 1 << index
            stats.tasks_pruned += 1
        return Expansion(successors=[], exhaustive=not truncated)


class ReferenceSequenceOrientedExpander(Expander):
    """The original D-COLS expander: per-candidate dispatch, eager sort."""

    def __init__(
        self,
        beam_width: Optional[int] = None,
        start_processor: int = 0,
    ) -> None:
        if beam_width is not None and beam_width <= 0:
            raise ValueError("beam_width must be positive when given")
        if start_processor < 0:
            raise ValueError("start_processor must be non-negative")
        self.beam_width = beam_width
        self.start_processor = start_processor

    def processor_at(self, depth: int, num_processors: int) -> int:
        return (self.start_processor + depth) % num_processors

    def successors(
        self,
        vertex: Vertex,
        ctx: PhaseContext,
        budget: SearchBudget,
        stats: SearchStats,
    ) -> Expansion:
        processor = self.processor_at(vertex.depth, ctx.num_processors)
        beam = self.beam_width if self.beam_width is not None else ctx.num_processors
        comm_cost = ctx.comm.cost
        evaluate = ctx.evaluator.evaluate
        candidates: List[Vertex] = []
        probed = 0
        for index in _unscheduled_indices(vertex, ctx.n):
            if probed >= beam:
                break
            probed += 1
            task = ctx.tasks[index]
            comm = comm_cost(task, processor)
            total = task.processing_time + comm
            scheduled_end = vertex.proc_offsets[processor] + total
            if ctx.is_feasible(task, scheduled_end):
                child = make_child(vertex, index, processor, total, comm)
                child.value = evaluate(ctx, child)
                candidates.append(child)
        budget.charge(probed)
        stats.vertices_generated += probed
        stats.task_probes += 1 if probed else 0
        stats.feasibility_rejections += probed - len(candidates)
        candidates.sort(key=lambda v: v.value)
        return Expansion(successors=candidates, exhaustive=False)


def run_search(
    ctx: PhaseContext,
    expander: Expander,
    budget: SearchBudget,
    max_candidates: Optional[int] = None,
    max_iterations: Optional[int] = None,
) -> SearchOutcome:
    """The original depth-first driver over the reference CL."""
    root = make_root(ctx.initial_offsets)
    cl = ReferenceCandidateList(max_size=max_candidates)
    cl.push_block([root])
    best = root
    stats = SearchStats()
    iterations = 0
    while not budget.exhausted():
        if max_iterations is not None and iterations >= max_iterations:
            break
        iterations += 1
        vertex = cl.pop()
        if vertex is None:
            stats.dead_end = True
            break
        if vertex.depth >= ctx.n:
            best = vertex
            stats.complete = True
            break
        expansion = expander.successors(vertex, ctx, budget, stats)
        stats.expansions += 1
        if not expansion.successors:
            if expansion.exhaustive:
                if _is_better(vertex, best):
                    best = vertex
                stats.maximal = True
                break
            stats.backtracks += 1
            continue
        for succ in expansion.successors:
            if _is_better(succ, best):
                best = succ
        cl.push_block(expansion.successors)
    stats.max_depth = best.depth
    stats.processors_touched = len({v.processor for v in best.path()})
    return SearchOutcome(
        best=best,
        stats=stats,
        time_used=min(budget.used(), ctx.quantum),
        candidates_dropped=cl.dropped,
    )


def _is_better(candidate: Vertex, incumbent: Vertex) -> bool:
    if candidate.depth != incumbent.depth:
        return candidate.depth > incumbent.depth
    return candidate.value < incumbent.value


def run_phase(
    tasks: Sequence[Task],
    loads: Sequence[float],
    now: float,
    quantum: float,
    comm: CommunicationModel,
    expander: Expander,
    evaluator: VertexEvaluator,
    budget: Optional[SearchBudget] = None,
    per_vertex_cost: float = 0.1,
    max_candidates: Optional[int] = None,
) -> PhaseResult:
    """The original phase loop, wired to the reference search driver."""
    ordered = sorted(tasks, key=lambda t: (t.deadline, t.task_id))
    bound = now + quantum
    admitted = [
        t for t in ordered if bound + t.processing_time <= t.deadline + 1e-9
    ]
    prefilter_rejected = len(ordered) - len(admitted)
    ordered = admitted
    offsets = projected_offsets(loads, quantum)
    ctx = PhaseContext(
        tasks=ordered,
        num_processors=len(loads),
        comm=comm,
        phase_start=now,
        quantum=quantum,
        initial_offsets=offsets,
        evaluator=evaluator,
    )
    if budget is None:
        budget = VirtualTimeBudget(quantum=quantum, per_vertex_cost=per_vertex_cost)
    outcome = run_search(ctx, expander, budget, max_candidates=max_candidates)
    outcome.stats.prefilter_rejected = prefilter_rejected
    time_used = min(max(outcome.time_used, MIN_PHASE_TIME), quantum)
    return PhaseResult(
        schedule=outcome.extract_schedule(ctx),
        time_used=time_used,
        quantum=quantum,
        phase_start=now,
        stats=outcome.stats,
        initial_offsets=offsets,
    )


def reference_rtsads(
    comm: CommunicationModel,
    evaluator: Optional[VertexEvaluator] = None,
    quantum_policy: Optional[QuantumPolicy] = None,
    per_vertex_cost: float = DEFAULT_PER_VERTEX_COST,
    max_task_probes: Optional[int] = None,
    max_candidates: Optional[int] = 100_000,
) -> SearchScheduler:
    """RT-SADS assembled entirely from the frozen reference pieces.

    Same configuration as :class:`repro.core.rtsads.RTSADS` but running the
    reference expander, evaluator, CL, and phase loop.  ``name`` is kept as
    ``"RT-SADS"`` so traces and metrics labels are directly comparable.
    """
    expander = ReferenceAssignmentOrientedExpander(max_task_probes=max_task_probes)
    return SearchScheduler(
        comm=comm,
        expander_factory=lambda phase_index: expander,
        evaluator=evaluator or ReferenceLoadBalancingEvaluator(),
        quantum_policy=quantum_policy,
        per_vertex_cost=per_vertex_cost,
        max_candidates=max_candidates,
        name="RT-SADS",
        phase_runner=run_phase,
    )


def reference_dcols(
    comm: CommunicationModel,
    evaluator: Optional[VertexEvaluator] = None,
    quantum_policy: Optional[QuantumPolicy] = None,
    per_vertex_cost: float = DEFAULT_PER_VERTEX_COST,
    beam_width: Optional[int] = None,
    rotate_start: bool = False,
    max_candidates: Optional[int] = 100_000,
) -> SearchScheduler:
    """D-COLS assembled entirely from the frozen reference pieces."""

    def factory(phase_index: int) -> ReferenceSequenceOrientedExpander:
        start = phase_index if rotate_start else 0
        return ReferenceSequenceOrientedExpander(
            beam_width=beam_width, start_processor=start
        )

    return SearchScheduler(
        comm=comm,
        expander_factory=factory,
        evaluator=evaluator or ReferenceLoadBalancingEvaluator(),
        quantum_policy=quantum_policy,
        per_vertex_cost=per_vertex_cost,
        max_candidates=max_candidates,
        name="D-COLS",
        phase_runner=run_phase,
    )
