"""Scheduler interface and the generic search-based dynamic scheduler.

The on-line runtime (:mod:`repro.simulator.runtime`) is scheduler-agnostic:
anything implementing :class:`Scheduler` can drive it.  RT-SADS and D-COLS
are thin configurations of :class:`SearchScheduler`; the greedy baselines in
:mod:`repro.core.baselines` implement the interface directly.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Optional, Sequence

from ..observability import Instrumentation, get_instrumentation
from .affinity import CommunicationModel
from .cost import LoadBalancingEvaluator, VertexEvaluator
from .kernels import resolve_kernel
from .phase import PhaseResult, run_phase
from .quantum import QuantumPolicy, SelfAdjustingQuantum
from .search import Expander, SearchStats, VirtualTimeBudget
from .task import Task

#: Default modelled cost of generating/evaluating one search vertex, in the
#: same time units as task processing times (one tuple-check = 1.0 unit).
DEFAULT_PER_VERTEX_COST = 0.1

#: Default cap on the allocated quantum, as a multiple of the time one full
#: search pass over the batch costs (``kappa * m * |batch|``).  The paper's
#: criterion (Figure 3) is an upper bound ("Q_s(j) <= max[...]"); allocating
#: more time than the search can productively use only pushes the
#: feasibility bound ``t_s + Q_s`` further out — making *currently* viable
#: tasks test infeasible — while the extra time buys no additional search.
#: The factor leaves room for backtracking beyond the single greedy pass.
DEFAULT_QUANTUM_CAP_FACTOR = 3.0

#: Per-phase fixed overhead, as a multiple of ``kappa * (batch + m)``: every
#: phase the host must merge arrivals into Batch(j), run the expiry test on
#: each member, read every processor's load, and deliver the schedule.  This
#: cost exists for every scheduler and prevents the unrealistic
#: free-restart regime where an algorithm converts dead-end micro-phases
#: into a zero-cost trickle scheduler.
DEFAULT_PHASE_OVERHEAD_FACTOR = 1.0


def record_phase_metrics(
    obs: Instrumentation,
    name: str,
    stats: SearchStats,
    quantum: float,
    batch_size: int,
) -> None:
    """Accumulate one phase's search counters under ``scheduler=name``.

    Shared by every scheduler implementation so the per-scheduler series in
    a metrics snapshot are comparable regardless of algorithm.
    """
    metrics = obs.metrics
    metrics.counter("scheduler_phases", scheduler=name).inc()
    metrics.counter(
        "scheduler_vertices_generated", scheduler=name
    ).inc(stats.vertices_generated)
    metrics.counter("scheduler_expansions", scheduler=name).inc(stats.expansions)
    metrics.counter("scheduler_backtracks", scheduler=name).inc(stats.backtracks)
    metrics.counter(
        "scheduler_feasibility_rejections", scheduler=name
    ).inc(stats.feasibility_rejections)
    metrics.counter(
        "scheduler_prefilter_rejected", scheduler=name
    ).inc(stats.prefilter_rejected)
    metrics.counter(
        "scheduler_tasks_pruned", scheduler=name
    ).inc(stats.tasks_pruned)
    if stats.dead_end:
        metrics.counter("scheduler_dead_ends", scheduler=name).inc()
    if stats.complete:
        metrics.counter("scheduler_complete_phases", scheduler=name).inc()
    metrics.histogram("scheduler_quantum", scheduler=name).observe(quantum)
    metrics.histogram("scheduler_batch_size", scheduler=name).observe(batch_size)
    metrics.histogram(
        "scheduler_search_depth", scheduler=name
    ).observe(stats.max_depth)


def phase_overhead(
    batch_size: int,
    num_processors: int,
    per_vertex_cost: float,
    overhead_factor: float,
) -> float:
    """Fixed host time one scheduling phase costs outside the search."""
    return overhead_factor * per_vertex_cost * (batch_size + num_processors)


def useful_search_time(
    batch_size: int,
    num_processors: int,
    per_vertex_cost: float,
    cap_factor: float,
) -> float:
    """Upper bound on productively usable scheduling time for one phase."""
    one_pass = per_vertex_cost * num_processors * max(1, batch_size)
    return cap_factor * one_pass


class Scheduler(ABC):
    """A dynamic scheduler usable by the on-line runtime."""

    name: str = "scheduler"

    #: None means "use the process default at phase time"; the runtime
    #: injects its own instrumentation here for the duration of a run so an
    #: explicitly instrumented ``simulate(...)`` reaches the phase loop too.
    instrumentation: Optional[Instrumentation] = None

    @abstractmethod
    def plan_quantum(
        self, batch: Sequence[Task], loads: Sequence[float], now: float
    ) -> float:
        """Allocate the scheduling time ``Q_s(j)`` for the next phase."""

    @abstractmethod
    def schedule_phase(
        self,
        batch: Sequence[Task],
        loads: Sequence[float],
        now: float,
        quantum: float,
    ) -> PhaseResult:
        """Run scheduling phase ``j`` and return its feasible schedule."""

    def reset(self) -> None:
        """Clear inter-phase state before a fresh simulation run."""


class SearchScheduler(Scheduler):
    """Search-based dynamic scheduler parameterized by representation.

    Combines a quantum policy (Section 4.2), a search representation
    (Section 3), a vertex evaluator (Section 4.4), and the budget model into
    the phase loop of Section 4.1.  ``expander_factory`` receives the phase
    index so representations can rotate state across phases (D-COLS rotates
    its round-robin start processor).
    """

    def __init__(
        self,
        comm: CommunicationModel,
        expander_factory,
        evaluator: Optional[VertexEvaluator] = None,
        quantum_policy: Optional[QuantumPolicy] = None,
        per_vertex_cost: float = DEFAULT_PER_VERTEX_COST,
        max_candidates: Optional[int] = 100_000,
        quantum_cap_factor: Optional[float] = DEFAULT_QUANTUM_CAP_FACTOR,
        phase_overhead_factor: float = DEFAULT_PHASE_OVERHEAD_FACTOR,
        name: str = "search-scheduler",
        instrumentation: Optional[Instrumentation] = None,
        phase_runner=None,
        kernel=None,
    ) -> None:
        if per_vertex_cost <= 0:
            raise ValueError("per_vertex_cost must be positive")
        if quantum_cap_factor is not None and quantum_cap_factor <= 0:
            raise ValueError("quantum_cap_factor must be positive when given")
        if phase_overhead_factor < 0:
            raise ValueError("phase_overhead_factor must be non-negative")
        self.comm = comm
        self.expander_factory = expander_factory
        self.evaluator = evaluator or LoadBalancingEvaluator()
        self.quantum_policy = quantum_policy or SelfAdjustingQuantum()
        self.per_vertex_cost = per_vertex_cost
        self.max_candidates = max_candidates
        self.quantum_cap_factor = quantum_cap_factor
        self.phase_overhead_factor = phase_overhead_factor
        self.name = name
        # None means "use the process default at phase time", so switching
        # the global instrumentation on affects already-built schedulers.
        self.instrumentation = instrumentation
        # The differential harness swaps in the frozen reference phase loop
        # (repro.core.reference.run_phase) here; production schedulers keep
        # the optimized default.
        self._phase_runner = phase_runner if phase_runner is not None else run_phase
        # Resolved eagerly so a missing optional dependency (numpy for
        # kernel="vectorized") fails at construction, not mid-simulation.
        # None stays None: alternative phase runners (the frozen reference
        # loop) predate the kernel parameter, so it is only forwarded when
        # explicitly configured.
        self.kernel = resolve_kernel(kernel)
        self.phase_index = 0

    def plan_quantum(
        self, batch: Sequence[Task], loads: Sequence[float], now: float
    ) -> float:
        quantum = self.quantum_policy.quantum(batch, loads, now)
        if self.quantum_cap_factor is not None:
            cap = useful_search_time(
                batch_size=len(batch),
                num_processors=len(loads),
                per_vertex_cost=self.per_vertex_cost,
                cap_factor=self.quantum_cap_factor,
            )
            quantum = min(quantum, max(cap, self.quantum_policy.min_quantum))
        return quantum

    def schedule_phase(
        self,
        batch: Sequence[Task],
        loads: Sequence[float],
        now: float,
        quantum: float,
    ) -> PhaseResult:
        expander: Expander = self.expander_factory(self.phase_index)
        # The phase's total window is the search quantum plus the fixed
        # batch-management overhead; the overhead is pre-consumed so the
        # search only gets `quantum` of it, while the feasibility bound
        # covers the full window (delivery cannot happen before the
        # overhead is paid).
        overhead = phase_overhead(
            batch_size=len(batch),
            num_processors=len(loads),
            per_vertex_cost=self.per_vertex_cost,
            overhead_factor=self.phase_overhead_factor,
        )
        budget = VirtualTimeBudget(
            quantum=quantum + overhead, per_vertex_cost=self.per_vertex_cost
        )
        budget.consume(overhead)
        runner_kwargs = {} if self.kernel is None else {"kernel": self.kernel}
        obs = self.instrumentation or get_instrumentation()
        if not obs.enabled:
            result = self._phase_runner(
                tasks=batch,
                loads=loads,
                now=now,
                quantum=quantum + overhead,
                comm=self.comm,
                expander=expander,
                evaluator=self.evaluator,
                budget=budget,
                per_vertex_cost=self.per_vertex_cost,
                max_candidates=self.max_candidates,
                **runner_kwargs,
            )
            self.phase_index += 1
            return result
        with obs.span("phase", scheduler=self.name, phase=self.phase_index) as span:
            result = self._phase_runner(
                tasks=batch,
                loads=loads,
                now=now,
                quantum=quantum + overhead,
                comm=self.comm,
                expander=expander,
                evaluator=self.evaluator,
                budget=budget,
                per_vertex_cost=self.per_vertex_cost,
                max_candidates=self.max_candidates,
                **runner_kwargs,
            )
            span.set(
                t=now,
                quantum=result.quantum,
                time_used=result.time_used,
                batch_size=len(batch),
                scheduled=len(result.schedule),
                vertices_generated=result.stats.vertices_generated,
                expansions=result.stats.expansions,
                backtracks=result.stats.backtracks,
                feasibility_rejections=result.stats.feasibility_rejections,
                prefilter_rejected=result.stats.prefilter_rejected,
                tasks_pruned=result.stats.tasks_pruned,
                dead_end=result.stats.dead_end,
                complete=result.stats.complete,
                max_depth=result.stats.max_depth,
            )
        record_phase_metrics(obs, self.name, result.stats, quantum, len(batch))
        obs.logger.debug(
            "phase complete",
            scheduler=self.name,
            phase=self.phase_index,
            scheduled=len(result.schedule),
            vertices=result.stats.vertices_generated,
        )
        self.phase_index += 1
        return result

    def reset(self) -> None:
        self.phase_index = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"{type(self).__name__}(name={self.name!r}, "
            f"evaluator={self.evaluator.name}, "
            f"quantum={self.quantum_policy.name})"
        )
