"""RT-SADS: Real-Time Self-Adjusting Dynamic Scheduling (paper Section 4).

RT-SADS searches an **assignment-oriented** task space (pick a task, branch
on processors) under a **self-adjusting quantum** ``max(Min_Slack,
Min_Load)``, guided by the **load-balancing cost function** ``CE``, with the
quantum-aware feasibility test that makes its correctness theorem hold.  It
is a configuration of :class:`repro.core.scheduler.SearchScheduler`; this
module pins the paper's choices and documents the knobs.
"""

from __future__ import annotations

from typing import Optional

from ..observability import Instrumentation
from .affinity import CommunicationModel
from .cost import LoadBalancingEvaluator, VertexEvaluator
from .quantum import QuantumPolicy, SelfAdjustingQuantum
from .registry import SchedulerContext, register_scheduler
from .representations import AssignmentOrientedExpander
from .scheduler import DEFAULT_PER_VERTEX_COST, SearchScheduler


class RTSADS(SearchScheduler):
    """The paper's algorithm with its default mechanisms.

    Parameters
    ----------
    comm:
        Communication model supplying ``c_ij`` (usually the uniform-C
        wormhole model).
    evaluator:
        Vertex evaluator; defaults to the load-balancing cost function
        ``CE`` of Section 4.4.  Pass another evaluator for ablation A2.
    quantum_policy:
        Defaults to the self-adjusting criterion of Figure 3.  Pass a
        :class:`repro.core.quantum.FixedQuantum` for ablation A1.
    per_vertex_cost:
        Modelled scheduling cost of generating one search vertex (the
        virtual-time stand-in for Paragon host-processor speed).
    max_task_probes:
        How many EDF-ordered tasks a level may probe before giving up when
        the front tasks have no feasible processor; ``None`` probes all.
    phase_runner:
        Alternative phase loop; the differential harness passes the frozen
        :func:`repro.core.reference.run_phase` here to pin the optimized
        hot path against the reference implementation.
    kernel:
        Search-kernel name or instance (:mod:`repro.core.kernels`);
        ``None`` keeps the default scalar phase loop.  Kernels are
        bit-identical by contract, so this is purely a speed knob.
    """

    def __init__(
        self,
        comm: CommunicationModel,
        evaluator: Optional[VertexEvaluator] = None,
        quantum_policy: Optional[QuantumPolicy] = None,
        per_vertex_cost: float = DEFAULT_PER_VERTEX_COST,
        max_task_probes: Optional[int] = None,
        max_candidates: Optional[int] = 100_000,
        instrumentation: Optional["Instrumentation"] = None,
        phase_runner=None,
        kernel=None,
    ) -> None:
        expander = AssignmentOrientedExpander(max_task_probes=max_task_probes)
        super().__init__(
            comm=comm,
            # The assignment-oriented expander is stateless across phases.
            expander_factory=lambda phase_index: expander,
            evaluator=evaluator or LoadBalancingEvaluator(),
            quantum_policy=quantum_policy or SelfAdjustingQuantum(),
            per_vertex_cost=per_vertex_cost,
            max_candidates=max_candidates,
            name="RT-SADS",
            instrumentation=instrumentation,
            phase_runner=phase_runner,
            kernel=kernel,
        )


def _build_rtsads(context: "SchedulerContext") -> RTSADS:
    return RTSADS(
        comm=context.comm,
        evaluator=context.evaluator,
        quantum_policy=context.quantum_policy,
        per_vertex_cost=context.per_vertex_cost,
        kernel=context.kernel,
    )


register_scheduler("rtsads", _build_rtsads)
