"""Schedules: the output of a scheduling phase.

A schedule (paper Section 3) is an ordered set of task-to-processor
assignments ``(T_i -> P_j)``.  A *complete* schedule covers the whole batch;
otherwise it is *partial*.  Schedules produced by a phase are delivered to the
ready queues of the working processors and executed in order.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List

from .affinity import CommunicationModel
from .task import Task


@dataclass(frozen=True)
class ScheduleEntry:
    """One feasible task-to-processor assignment inside a schedule.

    ``scheduled_end`` is ``se_lk`` from the paper's feasibility test: the
    projected completion offset of the task, measured from the end of the
    scheduling phase that produced it.
    """

    task: Task
    processor: int
    communication_cost: float
    scheduled_end: float

    @property
    def total_cost(self) -> float:
        """``p_l + c_lk`` — the processor time the entry consumes."""
        return self.task.processing_time + self.communication_cost

    @property
    def scheduled_start(self) -> float:
        """Projected start offset (from phase end) of this entry."""
        return self.scheduled_end - self.total_cost


class Schedule:
    """An ordered collection of :class:`ScheduleEntry`, grouped by processor.

    Entries preserve the order in which the search added them to the partial
    schedule; per-processor sequences preserve execution order.
    """

    def __init__(self, entries: Iterable[ScheduleEntry] = ()) -> None:
        self._entries: List[ScheduleEntry] = []
        self._by_processor: Dict[int, List[ScheduleEntry]] = {}
        self._task_ids: set[int] = set()
        for entry in entries:
            self.append(entry)

    def append(self, entry: ScheduleEntry) -> None:
        """Add an assignment; rejects scheduling the same task twice."""
        if entry.task.task_id in self._task_ids:
            raise ValueError(
                f"task {entry.task.task_id} already present in schedule"
            )
        self._entries.append(entry)
        self._by_processor.setdefault(entry.processor, []).append(entry)
        self._task_ids.add(entry.task.task_id)

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[ScheduleEntry]:
        return iter(self._entries)

    def __bool__(self) -> bool:
        return bool(self._entries)

    @property
    def entries(self) -> List[ScheduleEntry]:
        return list(self._entries)

    def task_ids(self) -> set[int]:
        """Ids of all tasks covered by this schedule."""
        return set(self._task_ids)

    def processors(self) -> set[int]:
        """Processors that received at least one task."""
        return set(self._by_processor)

    def sequence_for(self, processor: int) -> List[ScheduleEntry]:
        """Execution order of the entries assigned to ``processor``."""
        return list(self._by_processor.get(processor, []))

    def load_per_processor(self) -> Dict[int, float]:
        """Total ``p + c`` added to each processor by this schedule."""
        return {
            proc: sum(e.total_cost for e in seq)
            for proc, seq in self._by_processor.items()
        }

    def makespan(self) -> float:
        """Largest scheduled-end offset — the schedule's ``CE`` value."""
        if not self._entries:
            return 0.0
        return max(e.scheduled_end for e in self._entries)

    def is_complete_for(self, batch_task_ids: Iterable[int]) -> bool:
        """Whether every task of the batch appears in this schedule."""
        return set(batch_task_ids) <= self._task_ids

    def validate(
        self,
        comm: CommunicationModel,
        initial_loads: Dict[int, float],
        delivery_bound: float,
    ) -> None:
        """Check internal consistency and deadline safety of the schedule.

        Verifies, for every processor sequence, that scheduled ends are
        cumulative sums of entry costs on top of the processor's projected
        initial load, and that ``delivery_bound + se <= d`` for every entry
        (``delivery_bound`` is ``t_s + Q_s``, an upper bound on the phase's
        actual end time ``t_e``).  Raises ``ValueError`` on violation.
        """
        for proc, seq in self._by_processor.items():
            offset = initial_loads.get(proc, 0.0)
            for entry in seq:
                expected_cost = comm.execution_cost(entry.task, proc)
                if abs(entry.total_cost - expected_cost) > 1e-9:
                    raise ValueError(
                        f"entry for task {entry.task.task_id} on P{proc} has "
                        f"cost {entry.total_cost}, expected {expected_cost}"
                    )
                offset += entry.total_cost
                if abs(entry.scheduled_end - offset) > 1e-9:
                    raise ValueError(
                        f"entry for task {entry.task.task_id} on P{proc} has "
                        f"scheduled_end {entry.scheduled_end}, expected {offset}"
                    )
                if delivery_bound + entry.scheduled_end > entry.task.deadline + 1e-9:
                    raise ValueError(
                        f"task {entry.task.task_id} violates deadline: "
                        f"{delivery_bound} + {entry.scheduled_end} > "
                        f"{entry.task.deadline}"
                    )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Schedule(tasks={len(self._entries)}, "
            f"processors={sorted(self._by_processor)})"
        )
