"""Batch lifecycle across scheduling phases (paper Section 4).

``Batch(0)`` holds the initially arrived tasks.  At the end of phase ``j``,
``Batch(j+1)`` is formed by removing the tasks scheduled in phase ``j`` and
the tasks whose deadlines were missed while waiting, and by adding the tasks
that arrived during phase ``j``.  Scheduled tasks never re-enter a batch.
"""

from __future__ import annotations

from typing import Dict, Iterable, List

from .task import Task


class Batch:
    """The scheduler's working set of unscheduled, still-viable tasks."""

    def __init__(self, tasks: Iterable[Task] = ()) -> None:
        self._tasks: Dict[int, Task] = {}
        self.phase_index = 0
        self.total_admitted = 0
        self.total_scheduled = 0
        self.total_expired = 0
        self.total_withdrawn = 0
        self.add_arrivals(tasks)

    def __len__(self) -> int:
        return len(self._tasks)

    def __bool__(self) -> bool:
        return bool(self._tasks)

    def __contains__(self, task_id: int) -> bool:
        return task_id in self._tasks

    def tasks(self) -> List[Task]:
        """Current members in admission order."""
        return list(self._tasks.values())

    def edf_order(self) -> List[Task]:
        """Current members sorted by deadline (the phase's task order)."""
        return sorted(
            self._tasks.values(), key=lambda t: (t.deadline, t.task_id)
        )

    def add_arrivals(self, tasks: Iterable[Task]) -> int:
        """Admit newly arrived tasks; returns how many were admitted."""
        added = 0
        for task in tasks:
            if task.task_id in self._tasks:
                raise ValueError(
                    f"task {task.task_id} already in batch"
                )
            self._tasks[task.task_id] = task
            added += 1
        self.total_admitted += added
        return added

    def remove_scheduled(self, task_ids: Iterable[int]) -> List[Task]:
        """Remove tasks scheduled in the finishing phase; never re-admitted."""
        removed = []
        for task_id in task_ids:
            task = self._tasks.pop(task_id, None)
            if task is None:
                raise KeyError(f"task {task_id} not in batch")
            removed.append(task)
        self.total_scheduled += len(removed)
        return removed

    def withdraw(self, task_ids: Iterable[int]) -> List[Task]:
        """Remove tasks shed by an admission policy before any phase took them.

        Unlike :meth:`remove_scheduled`, missing ids are skipped (the task
        may have expired or been scheduled since the shed decision) and the
        removals count as ``total_withdrawn``, not ``total_scheduled``.
        """
        withdrawn = []
        for task_id in task_ids:
            task = self._tasks.pop(task_id, None)
            if task is not None:
                withdrawn.append(task)
        self.total_withdrawn += len(withdrawn)
        return withdrawn

    def drop_expired(self, now: float) -> List[Task]:
        """Evict tasks satisfying ``p_i + t_c > d_i`` (hopeless at ``now``)."""
        expired = [t for t in self._tasks.values() if t.is_expired(now)]
        for task in expired:
            del self._tasks[task.task_id]
        self.total_expired += len(expired)
        return expired

    def advance_phase(self) -> int:
        """Mark the transition ``Batch(j) -> Batch(j+1)``; returns new index."""
        self.phase_index += 1
        return self.phase_index

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Batch(j={self.phase_index}, size={len(self._tasks)}, "
            f"scheduled={self.total_scheduled}, expired={self.total_expired})"
        )
