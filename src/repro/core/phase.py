"""One scheduling phase: glue between quantum, search, and schedule.

A phase (paper Section 4.1) starts at the root of the task space with the
current batch, searches under its allocated quantum, and ends with a feasible
partial or complete schedule ``S_j`` ready for delivery to the working
processors' ready queues.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from .affinity import CommunicationModel
from .cost import VertexEvaluator
from .feasibility import projected_offsets
from .kernels import resolve_kernel
from .schedule import Schedule
from .search import (
    Expander,
    PhaseContext,
    SearchBudget,
    SearchStats,
    VirtualTimeBudget,
    run_search,
)
from .task import Task

#: Minimum virtual time a phase consumes even if the search ends instantly.
#: Prevents zero-length phases from stalling the on-line runtime's clock.
MIN_PHASE_TIME = 1e-6


@dataclass
class PhaseResult:
    """Everything the runtime needs from a finished scheduling phase."""

    schedule: Schedule
    time_used: float
    quantum: float
    phase_start: float
    stats: SearchStats
    initial_offsets: tuple

    @property
    def phase_end(self) -> float:
        """Delivery time ``t_e = t_s + sigma`` of the produced schedule."""
        return self.phase_start + self.time_used

    @property
    def phase_end_bound(self) -> float:
        """The feasibility bound ``t_s + Q_s(j)`` the phase honoured."""
        return self.phase_start + self.quantum

    def validate(self, comm: CommunicationModel) -> None:
        """Re-check the schedule against the phase's feasibility bound."""
        self.schedule.validate(
            comm,
            dict(enumerate(self.initial_offsets)),
            self.phase_end_bound,
        )


def run_phase(
    tasks: Sequence[Task],
    loads: Sequence[float],
    now: float,
    quantum: float,
    comm: CommunicationModel,
    expander: Expander,
    evaluator: VertexEvaluator,
    budget: Optional[SearchBudget] = None,
    per_vertex_cost: float = 0.1,
    max_candidates: Optional[int] = None,
    kernel=None,
) -> PhaseResult:
    """Run one scheduling phase over an EDF-ordered snapshot of the batch.

    Parameters mirror the paper: ``tasks`` is ``Batch(j)``, ``loads`` the
    remaining work ``Load_k(j-1)`` of each working processor at phase start,
    ``quantum`` the allocated ``Q_s(j)``.  If no explicit budget is supplied
    a :class:`VirtualTimeBudget` charging ``per_vertex_cost`` per generated
    vertex is used.  ``kernel`` selects the search kernel by name or
    instance (:mod:`repro.core.kernels`); ``None`` keeps the scalar
    :func:`~repro.core.search.run_search` — every kernel is bit-identical,
    so the choice never changes the schedule.
    """
    ordered = sorted(tasks, key=lambda t: (t.deadline, t.task_id))
    # Necessary-condition pre-filter: Figure 4's test at the best possible
    # offset (zero wait, zero communication).  A task failing
    # ``t_s + Q_s + p <= d`` is infeasible on every processor this phase, so
    # no representation needs to probe it; it stays in the batch for the
    # next phase.  The scan is part of the per-phase batch-management
    # overhead the scheduler already charges.
    bound = now + quantum
    admitted = [
        t for t in ordered if bound + t.processing_time <= t.deadline + 1e-9
    ]
    prefilter_rejected = len(ordered) - len(admitted)
    ordered = admitted
    offsets = projected_offsets(loads, quantum)
    ctx = PhaseContext(
        tasks=ordered,
        num_processors=len(loads),
        comm=comm,
        phase_start=now,
        quantum=quantum,
        initial_offsets=offsets,
        evaluator=evaluator,
    )
    if budget is None:
        budget = VirtualTimeBudget(quantum=quantum, per_vertex_cost=per_vertex_cost)
    kernel = resolve_kernel(kernel)
    if kernel is None:
        outcome = run_search(
            ctx, expander, budget, max_candidates=max_candidates
        )
    else:
        outcome = kernel.search(
            ctx, expander, budget, max_candidates=max_candidates
        )
    outcome.stats.prefilter_rejected = prefilter_rejected
    time_used = min(max(outcome.time_used, MIN_PHASE_TIME), quantum)
    return PhaseResult(
        schedule=outcome.extract_schedule(ctx),
        time_used=time_used,
        quantum=quantum,
        phase_start=now,
        stats=outcome.stats,
        initial_offsets=offsets,
    )
