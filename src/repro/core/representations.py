"""The two search representations of the paper (Figures 1 and 2).

* **Assignment-oriented** (Figure 2, used by RT-SADS): each level of the tree
  selects a *task* and branches on the *processor* it is assigned to.  All
  processors are candidates at every level, so backtracking can re-route a
  task to any processor — the property the paper credits for scalability.

* **Sequence-oriented** (Figure 1, used by D-COLS): each level selects a
  *processor* — in round-robin order — and branches on the *task* assigned to
  it.  Backtracking can only swap which task runs on the level's processor;
  when no remaining task is feasible on it, the branch dies, which is the
  dead-end mechanism behind the paper's scalability conjecture.

Both expanders charge the search budget for every candidate they generate
(feasible or not), keeping the comparison honest: the two algorithms receive
identical quanta and pay identical per-vertex costs.

The expansion loops here are the scheduler's hot path — they bound how many
vertices a quantum can explore, and therefore how much schedule the paper's
algorithms deliver per phase.  They are written against the frozen reference
in :mod:`repro.core.reference` and must stay *schedule-identical* to it: the
per-phase communication-row cache, the best-case feasibility prune, and the
hoisted feasibility comparison change how fast candidates are produced, never
which candidates are produced, charged, or counted.  The differential harness
under ``tests/differential/`` enforces this.
"""

from __future__ import annotations

from typing import List, Optional

from .feasibility import EPSILON
from .search import (
    Expander,
    Expansion,
    PhaseContext,
    SearchBudget,
    SearchStats,
    Vertex,
)


def _unscheduled_indices(vertex: Vertex, n: int):
    """Batch indices (EDF order) not yet on the vertex's partial path."""
    mask = vertex.scheduled_mask
    for index in range(n):
        if not (mask >> index) & 1:
            yield index


class AssignmentOrientedExpander(Expander):
    """RT-SADS's representation: pick a task, branch on processors.

    Task selection follows EDF order over the batch; if the earliest-deadline
    unscheduled task has no feasible processor it is skipped (it stays in the
    batch for the next phase) and the next task is probed, up to
    ``max_task_probes``.  Every probe evaluates all processors and charges
    the budget for each generated candidate.

    Because per-processor offsets never decrease along a path, a task that is
    infeasible on *every* processor at some vertex stays infeasible in the
    whole subtree below it.  Such tasks are therefore marked in the successor
    vertices' masks so deeper levels do not re-probe them — the discovery is
    paid for once (its vertex generations are charged) instead of at every
    level.  The pruned tasks remain in the batch for the next phase.
    """

    def __init__(self, max_task_probes: Optional[int] = None) -> None:
        if max_task_probes is not None and max_task_probes <= 0:
            raise ValueError("max_task_probes must be positive when given")
        self.max_task_probes = max_task_probes

    def successors(
        self,
        vertex: Vertex,
        ctx: PhaseContext,
        budget: SearchBudget,
        stats: SearchStats,
    ) -> Expansion:
        probes = 0
        hopeless_mask = 0
        truncated = False
        max_task_probes = self.max_task_probes
        m = ctx.num_processors
        bound = ctx.phase_end_bound
        tasks = ctx.tasks
        comm_row = ctx.comm_row
        evaluate = ctx.evaluator.evaluate
        offsets = vertex.proc_offsets
        min_offset = min(offsets)
        child_depth = vertex.depth + 1
        parent_max = vertex.max_offset
        for index in _unscheduled_indices(vertex, ctx.n):
            if max_task_probes is not None and probes >= max_task_probes:
                truncated = True
                break
            if probes and budget.exhausted():
                truncated = True
                break
            probes += 1
            stats.task_probes += 1
            task = tasks[index]
            budget.charge(m)
            stats.vertices_generated += m
            row, min_comm = comm_row(index)
            processing = task.processing_time
            deadline_eps = task.deadline + EPSILON
            # Best-case prune: with non-negative communication and monotone
            # offsets, no scheduled end can beat the cheapest row entry on
            # the least-loaded processor.  If even that violates Figure 4's
            # ``t_c + RQ_s(j) + se_lk <= d_l``, every candidate of this probe
            # is rejected without running the per-processor loop; the probe
            # is still charged and counted exactly as the full loop would.
            if bound + (min_offset + (processing + min_comm)) > deadline_eps:
                stats.feasibility_rejections += m
                hopeless_mask |= 1 << index
                stats.tasks_pruned += 1
                continue
            candidates: List[Vertex] = []
            child_mask = vertex.scheduled_mask | (1 << index)
            for processor in range(m):
                total = processing + row[processor]
                scheduled_end = offsets[processor] + total
                if bound + scheduled_end <= deadline_eps:
                    # Inline make_child: the feasibility test already
                    # computed the scheduled end, and the offset tuple is
                    # lazy, so a candidate costs one Vertex allocation.
                    child = Vertex(
                        vertex,
                        index,
                        processor,
                        child_depth,
                        child_mask,
                        None,
                        scheduled_end,
                        row[processor],
                        0.0,
                        parent_max
                        if parent_max >= scheduled_end
                        else scheduled_end,
                    )
                    child.value = evaluate(ctx, child)
                    candidates.append(child)
            stats.feasibility_rejections += m - len(candidates)
            if candidates:
                if hopeless_mask:
                    # Infeasible-everywhere tasks stay infeasible below this
                    # vertex (offsets are monotone); prune them from the
                    # subtree.  They are *not* scheduled and roll over to the
                    # next batch.
                    for child in candidates:
                        child.scheduled_mask |= hopeless_mask
                return Expansion(successors=candidates)
            hopeless_mask |= 1 << index
            stats.tasks_pruned += 1
        # No task could extend the schedule.  If every unscheduled task was
        # probed, this vertex is provably maximal (exhaustive=True).
        return Expansion(successors=[], exhaustive=not truncated)


class SequenceOrientedExpander(Expander):
    """D-COLS's representation: pick a processor round-robin, branch on tasks.

    Level ``depth`` of the tree considers processor
    ``(start_processor + depth) % m`` and generates candidates for the first
    ``beam_width`` unscheduled tasks in EDF order (the pruning a dynamic
    sequence-oriented algorithm must apply; the paper cites limited
    backtracking and bounded lookahead).  A level whose processor admits no
    feasible task yields no successors — the search must backtrack, and with
    low replication this is where D-COLS dead-ends.
    """

    def __init__(
        self,
        beam_width: Optional[int] = None,
        start_processor: int = 0,
    ) -> None:
        if beam_width is not None and beam_width <= 0:
            raise ValueError("beam_width must be positive when given")
        if start_processor < 0:
            raise ValueError("start_processor must be non-negative")
        self.beam_width = beam_width
        self.start_processor = start_processor

    def processor_at(self, depth: int, num_processors: int) -> int:
        """The processor considered at tree level ``depth``."""
        return (self.start_processor + depth) % num_processors

    def successors(
        self,
        vertex: Vertex,
        ctx: PhaseContext,
        budget: SearchBudget,
        stats: SearchStats,
    ) -> Expansion:
        processor = self.processor_at(vertex.depth, ctx.num_processors)
        beam = self.beam_width if self.beam_width is not None else ctx.num_processors
        tasks = ctx.tasks
        comm_row = ctx.comm_row
        evaluate = ctx.evaluator.evaluate
        bound = ctx.phase_end_bound
        offset = vertex.proc_offsets[processor]
        child_depth = vertex.depth + 1
        parent_mask = vertex.scheduled_mask
        parent_max = vertex.max_offset
        candidates: List[Vertex] = []
        probed = 0
        for index in _unscheduled_indices(vertex, ctx.n):
            if probed >= beam:
                break
            probed += 1
            task = tasks[index]
            comm = comm_row(index)[0][processor]
            total = task.processing_time + comm
            scheduled_end = offset + total
            if bound + scheduled_end <= task.deadline + EPSILON:
                child = Vertex(
                    vertex,
                    index,
                    processor,
                    child_depth,
                    parent_mask | (1 << index),
                    None,
                    scheduled_end,
                    comm,
                    0.0,
                    parent_max if parent_max >= scheduled_end else scheduled_end,
                )
                child.value = evaluate(ctx, child)
                candidates.append(child)
        budget.charge(probed)
        stats.vertices_generated += probed
        stats.task_probes += 1 if probed else 0
        stats.feasibility_rejections += probed - len(candidates)
        # A failed level only proves infeasibility on *this* processor, so a
        # sequence-oriented expansion is never exhaustive: the representation
        # cannot certify a maximal schedule and must backtrack instead.
        return Expansion(successors=candidates, exhaustive=False)


def get_expander(
    name: str,
    beam_width: Optional[int] = None,
    start_processor: int = 0,
    max_task_probes: Optional[int] = None,
) -> Expander:
    """Factory by short name, used by experiment configs and the CLI."""
    if name == "assignment":
        return AssignmentOrientedExpander(max_task_probes=max_task_probes)
    if name == "sequence":
        return SequenceOrientedExpander(
            beam_width=beam_width, start_processor=start_processor
        )
    raise ValueError(
        f"unknown representation {name!r}; choose 'assignment' or 'sequence'"
    )
