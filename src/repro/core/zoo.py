"""Scheduler zoo: classic multiprocessor policies behind one interface.

Three non-search schedulers that broaden the comparison beyond the
paper's contenders, all built on the :class:`_ListScheduler` machinery so
they charge the same virtual per-vertex cost and honour the same
quantum-aware feasibility bound (the guarantee theorem holds for them):

* :class:`GlobalEDFScheduler` — global earliest-deadline-first onto the
  earliest-available processor, the textbook global-EDF dispatcher.
* :class:`PartitionedEDFScheduler` — partitioned EDF: tasks are packed
  onto processors in decreasing-size order with a worst-fit (default) or
  first-fit bin-packing rule, then each processor runs its partition in
  EDF order (Chen & Bansal, arXiv:1809.04355 style heuristics).
* :class:`CandidateSortScheduler` — per-task candidate sorting in the
  style of slot-allocation runtimes: rank every processor by affinity
  (communication cost) then availability, and take the first feasible
  candidate or declare the task stuck.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from .affinity import CommunicationModel
from .feasibility import projected_offsets
from .baselines import _ListScheduler
from .phase import MIN_PHASE_TIME, PhaseResult
from .quantum import QuantumPolicy
from .registry import SchedulerContext, register_scheduler
from .schedule import Schedule, ScheduleEntry
from .scheduler import DEFAULT_PER_VERTEX_COST, record_phase_metrics
from .search import SearchStats
from .task import Task
from ..observability import get_instrumentation

_EPS = 1e-9


class GlobalEDFScheduler(_ListScheduler):
    """EDF task order dispatched to the earliest-available processor.

    Differs from :class:`~repro.core.baselines.GreedyEDFScheduler` in the
    processor rule: global EDF takes the machine that frees up first
    (least loaded), not the one that finishes *this* task first, so a
    high-communication task still lands on the emptiest queue.
    """

    def __init__(
        self,
        comm: CommunicationModel,
        quantum_policy: Optional[QuantumPolicy] = None,
        per_vertex_cost: float = DEFAULT_PER_VERTEX_COST,
        **kwargs,
    ) -> None:
        super().__init__(
            comm, quantum_policy, per_vertex_cost, name="Global-EDF", **kwargs
        )

    def _pick_processor(self, task, offsets, bound, budget, stats):
        budget.charge(len(offsets))
        stats.vertices_generated += len(offsets)
        best = None  # (offset, processor, comm_cost, end)
        for processor, offset in enumerate(offsets):
            comm_cost = self.comm.cost(task, processor)
            end = offset + task.processing_time + comm_cost
            if bound + end > task.deadline + _EPS:
                stats.feasibility_rejections += 1
                continue
            key = (offset, processor)
            if best is None or key < (best[0], best[1]):
                best = (offset, processor, comm_cost, end)
        if best is None:
            return None
        _, processor, comm_cost, end = best
        return processor, comm_cost, end


class CandidateSortScheduler(_ListScheduler):
    """Sort each task's processor candidates, take the first feasible.

    Candidates are ranked by (communication cost, availability, index):
    affine processors first — a replica-local processor pays zero comm —
    then the least-loaded among equals.  The first candidate that passes
    the feasibility bound wins; if the sorted list is exhausted the task
    is stuck this phase and waits for the next batch.
    """

    def __init__(
        self,
        comm: CommunicationModel,
        quantum_policy: Optional[QuantumPolicy] = None,
        per_vertex_cost: float = DEFAULT_PER_VERTEX_COST,
        **kwargs,
    ) -> None:
        super().__init__(
            comm,
            quantum_policy,
            per_vertex_cost,
            name="Candidate-Sort",
            **kwargs,
        )

    def _pick_processor(self, task, offsets, bound, budget, stats):
        budget.charge(len(offsets))
        stats.vertices_generated += len(offsets)
        candidates = sorted(
            (self.comm.cost(task, processor), offset, processor)
            for processor, offset in enumerate(offsets)
        )
        for comm_cost, offset, processor in candidates:
            end = offset + task.processing_time + comm_cost
            if bound + end <= task.deadline + _EPS:
                return processor, comm_cost, end
            stats.feasibility_rejections += 1
        return None


class PartitionedEDFScheduler(_ListScheduler):
    """Partitioned EDF: bin-pack tasks onto processors, run each in EDF.

    Phase one packs the batch in decreasing processing-time order using a
    worst-fit (``packing="wfd"``, default) or first-fit (``"ff"``) rule
    over the feasible processors.  Phase two reorders every processor's
    partition into EDF and recomputes completion times; because each
    task's requirement on a fixed processor is constant (processing time
    plus that pair's communication cost), the EDF exchange argument keeps
    every packed task feasible, and a defensive re-check drops any that
    are not rather than dispatching a doomed assignment.
    """

    def __init__(
        self,
        comm: CommunicationModel,
        quantum_policy: Optional[QuantumPolicy] = None,
        per_vertex_cost: float = DEFAULT_PER_VERTEX_COST,
        packing: str = "wfd",
        **kwargs,
    ) -> None:
        if packing not in ("wfd", "ff"):
            raise ValueError("packing must be 'wfd' or 'ff'")
        super().__init__(
            comm,
            quantum_policy,
            per_vertex_cost,
            name="Partitioned-EDF",
            **kwargs,
        )
        self.packing = packing

    def schedule_phase(
        self,
        batch: Sequence[Task],
        loads: Sequence[float],
        now: float,
        quantum: float,
    ) -> PhaseResult:
        budget = self._phase_budget(len(batch), len(loads), quantum)
        phase_window = budget.quantum  # quantum + phase overhead
        offsets = list(projected_offsets(loads, phase_window))
        initial = tuple(offsets)
        bound = now + phase_window
        stats = SearchStats()
        schedule = Schedule()
        viable = [
            t
            for t in sorted(
                batch, key=lambda t: (-t.processing_time, t.deadline, t.task_id)
            )
            if bound + t.processing_time <= t.deadline + _EPS
        ]
        partitions: List[List[tuple]] = [[] for _ in offsets]
        for task in viable:
            if budget.exhausted():
                break
            stats.task_probes += 1
            budget.charge(len(offsets))
            stats.vertices_generated += len(offsets)
            best = None  # (key, processor, comm_cost, end)
            for processor, offset in enumerate(offsets):
                comm_cost = self.comm.cost(task, processor)
                end = offset + task.processing_time + comm_cost
                if bound + end > task.deadline + _EPS:
                    stats.feasibility_rejections += 1
                    continue
                if self.packing == "ff":
                    best = (processor, processor, comm_cost, end)
                    break
                key = (offset, processor)  # worst fit: emptiest bin first
                if best is None or key < best[0]:
                    best = (key, processor, comm_cost, end)
            if best is None:
                continue
            _, processor, comm_cost, end = best
            offsets[processor] = end
            partitions[processor].append((task, comm_cost))
        # Each partition runs EDF on its processor; recompute the ends
        # from the processor's initial offset and re-verify the bound.
        for processor, assigned in enumerate(partitions):
            cursor = initial[processor]
            for task, comm_cost in sorted(
                assigned, key=lambda pair: (pair[0].deadline, pair[0].task_id)
            ):
                end = cursor + task.processing_time + comm_cost
                if bound + end > task.deadline + _EPS:
                    stats.feasibility_rejections += 1
                    continue
                cursor = end
                schedule.append(
                    ScheduleEntry(
                        task=task,
                        processor=processor,
                        communication_cost=comm_cost,
                        scheduled_end=end,
                    )
                )
        stats.expansions = len(schedule)
        stats.max_depth = len(schedule)
        stats.processors_touched = len(schedule.processors())
        stats.complete = len(schedule) == len(batch)
        stats.prefilter_rejected = len(batch) - len(viable)
        result = PhaseResult(
            schedule=schedule,
            time_used=min(max(budget.used(), MIN_PHASE_TIME), phase_window),
            quantum=phase_window,
            phase_start=now,
            stats=stats,
            initial_offsets=initial,
        )
        obs = self.instrumentation or get_instrumentation()
        if obs.enabled:
            record_phase_metrics(obs, self.name, stats, phase_window, len(batch))
        return result


def _build_edf(context: SchedulerContext) -> GlobalEDFScheduler:
    return GlobalEDFScheduler(
        comm=context.comm,
        quantum_policy=context.quantum_policy,
        per_vertex_cost=context.per_vertex_cost,
    )


def _build_partitioned_edf(context: SchedulerContext) -> PartitionedEDFScheduler:
    return PartitionedEDFScheduler(
        comm=context.comm,
        quantum_policy=context.quantum_policy,
        per_vertex_cost=context.per_vertex_cost,
    )


def _build_candidate_sort(context: SchedulerContext) -> CandidateSortScheduler:
    return CandidateSortScheduler(
        comm=context.comm,
        quantum_policy=context.quantum_policy,
        per_vertex_cost=context.per_vertex_cost,
    )


register_scheduler("edf", _build_edf)
register_scheduler("partitioned-edf", _build_partitioned_edf)
register_scheduler("candidate-sort", _build_candidate_sort)
