"""Vertex evaluation: cost functions and heuristics (paper Sections 3, 4.4).

After a vertex's feasible successors are generated, they are sorted by a
value so the most promising one is expanded first.  The paper's load-balanced
RT-SADS uses the total-execution-time cost function::

    CE_i = max_k ce_k,   ce_k = max(0, Load_k(j-1) - Q_s(j)) + sum(p_l + c_lk)

which simultaneously balances processor loads and penalizes inter-processor
communication (a remote assignment inflates ``ce_k`` by ``C``).  Lower values
are better throughout this module.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from .search import PhaseContext, Vertex


class VertexEvaluator(ABC):
    """Assigns a sort value to a candidate vertex; lower expands first."""

    #: Whether :meth:`evaluate_batch` reproduces :meth:`evaluate` exactly.
    #: The vectorized search kernel (:mod:`repro.core.vectorized`) only
    #: engages when this is True; custom evaluators that leave it False are
    #: silently served by the scalar kernel instead.
    supports_batch = False

    @abstractmethod
    def evaluate(self, ctx: "PhaseContext", vertex: "Vertex") -> float:
        """Value of the candidate; ties resolved by generation order."""

    def evaluate_batch(self, ctx, scheduled_ends, parent_max_offset, deadlines):
        """Vector of :meth:`evaluate` values for one block of siblings.

        ``scheduled_ends`` is a float64 array of the candidates' scheduled
        ends, ``parent_max_offset`` the shared parent's maximum offset, and
        ``deadlines`` the candidates' raw task deadlines (a scalar when the
        block shares one task, an array otherwise).  Implementations must
        perform the *same* floating-point operations in the *same* order as
        :meth:`evaluate` so the result is bit-identical per element — the
        kernel-equivalence contract of :mod:`repro.core.kernels`.  The
        returned array may alias an argument; callers never mutate either.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not implement batch evaluation"
        )

    @property
    def name(self) -> str:
        """Human-readable evaluator name (class name)."""
        return type(self).__name__


class LoadBalancingEvaluator(VertexEvaluator):
    """The paper's cost function ``CE_i = max_k ce_k`` (Section 4.4).

    ``vertex.proc_offsets`` contains, for each processor, the projected
    initial load plus the cost of every assignment on the partial path, so
    ``CE_i`` is its maximum — read from ``vertex.max_offset``, which
    :func:`repro.core.search.make_child` maintains incrementally (an
    assignment raises exactly one offset, so the child's maximum is
    ``max(parent max, new offset)``) instead of rescanning all ``m`` offsets
    per candidate.  The scheduled end of the new assignment breaks ties so
    that, among equally balanced extensions, the one finishing the new task
    earliest is preferred.
    """

    #: Weight of the tie-breaking term; small enough never to override CE.
    TIE_WEIGHT = 1e-6

    supports_batch = True

    def evaluate(self, ctx: "PhaseContext", vertex: "Vertex") -> float:
        """``CE_i`` plus the scheduled-end tie-breaking term."""
        return vertex.max_offset + self.TIE_WEIGHT * vertex.scheduled_end

    def evaluate_batch(self, ctx, scheduled_ends, parent_max_offset, deadlines):
        """Batched ``CE_i + tie`` — same two IEEE ops as :meth:`evaluate`."""
        # numpy is imported lazily so this module stays dependency-free; the
        # method is only reached from the vectorized kernel, which exists
        # only when numpy is importable.
        import numpy

        values = numpy.maximum(scheduled_ends, parent_max_offset)
        values += self.TIE_WEIGHT * scheduled_ends
        return values


class EarliestFinishEvaluator(VertexEvaluator):
    """Greedy heuristic: prefer the assignment that completes soonest.

    This is the classic minimum-completion-time rule; it ignores global
    balance and serves as the paper's "heuristic function" alternative.
    """

    supports_batch = True

    def evaluate(self, ctx: "PhaseContext", vertex: "Vertex") -> float:
        """The candidate's completion time on its processor."""
        return vertex.scheduled_end

    def evaluate_batch(self, ctx, scheduled_ends, parent_max_offset, deadlines):
        """The scheduled ends themselves (returned array aliases the input)."""
        return scheduled_ends


class MinSlackEvaluator(VertexEvaluator):
    """Prefer assignments leaving the least slack (tightest fit first).

    Packs urgent work early, mirroring least-laxity intuition.  Included as
    an additional heuristic for the cost-function ablation (A2).
    """

    supports_batch = True

    def evaluate(self, ctx: "PhaseContext", vertex: "Vertex") -> float:
        """Worst-case slack of the assignment; tight fits sort first."""
        task = ctx.tasks[vertex.batch_index]
        return task.deadline - (ctx.phase_end_bound + vertex.scheduled_end)

    def evaluate_batch(self, ctx, scheduled_ends, parent_max_offset, deadlines):
        """Batched slack — identical operand order to :meth:`evaluate`."""
        return deadlines - (ctx.phase_end_bound + scheduled_ends)


class FifoEvaluator(VertexEvaluator):
    """No heuristic: keep successors in generation order.

    With a stable sort this preserves processor order (assignment-oriented)
    or EDF task order (sequence-oriented), exactly the "no cost function"
    configuration of the ablation.
    """

    supports_batch = True

    def evaluate(self, ctx: "PhaseContext", vertex: "Vertex") -> float:
        """A constant: the stable CL preserves generation order."""
        return 0.0

    def evaluate_batch(self, ctx, scheduled_ends, parent_max_offset, deadlines):
        """All zeros, like :meth:`evaluate` (scheduled ends are finite)."""
        return scheduled_ends * 0.0


def get_evaluator(name: str) -> VertexEvaluator:
    """Factory by short name, used by experiment configs and the CLI."""
    evaluators = {
        "load_balancing": LoadBalancingEvaluator,
        "earliest_finish": EarliestFinishEvaluator,
        "min_slack": MinSlackEvaluator,
        "fifo": FifoEvaluator,
    }
    try:
        return evaluators[name]()
    except KeyError:
        raise ValueError(
            f"unknown evaluator {name!r}; choose from {sorted(evaluators)}"
        ) from None
