"""Vertex evaluation: cost functions and heuristics (paper Sections 3, 4.4).

After a vertex's feasible successors are generated, they are sorted by a
value so the most promising one is expanded first.  The paper's load-balanced
RT-SADS uses the total-execution-time cost function::

    CE_i = max_k ce_k,   ce_k = max(0, Load_k(j-1) - Q_s(j)) + sum(p_l + c_lk)

which simultaneously balances processor loads and penalizes inter-processor
communication (a remote assignment inflates ``ce_k`` by ``C``).  Lower values
are better throughout this module.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from .search import PhaseContext, Vertex


class VertexEvaluator(ABC):
    """Assigns a sort value to a candidate vertex; lower expands first."""

    @abstractmethod
    def evaluate(self, ctx: "PhaseContext", vertex: "Vertex") -> float:
        """Value of the candidate; ties resolved by generation order."""

    @property
    def name(self) -> str:
        return type(self).__name__


class LoadBalancingEvaluator(VertexEvaluator):
    """The paper's cost function ``CE_i = max_k ce_k`` (Section 4.4).

    ``vertex.proc_offsets`` contains, for each processor, the projected
    initial load plus the cost of every assignment on the partial path, so
    ``CE_i`` is its maximum — read from ``vertex.max_offset``, which
    :func:`repro.core.search.make_child` maintains incrementally (an
    assignment raises exactly one offset, so the child's maximum is
    ``max(parent max, new offset)``) instead of rescanning all ``m`` offsets
    per candidate.  The scheduled end of the new assignment breaks ties so
    that, among equally balanced extensions, the one finishing the new task
    earliest is preferred.
    """

    #: Weight of the tie-breaking term; small enough never to override CE.
    TIE_WEIGHT = 1e-6

    def evaluate(self, ctx: "PhaseContext", vertex: "Vertex") -> float:
        return vertex.max_offset + self.TIE_WEIGHT * vertex.scheduled_end


class EarliestFinishEvaluator(VertexEvaluator):
    """Greedy heuristic: prefer the assignment that completes soonest.

    This is the classic minimum-completion-time rule; it ignores global
    balance and serves as the paper's "heuristic function" alternative.
    """

    def evaluate(self, ctx: "PhaseContext", vertex: "Vertex") -> float:
        return vertex.scheduled_end


class MinSlackEvaluator(VertexEvaluator):
    """Prefer assignments leaving the least slack (tightest fit first).

    Packs urgent work early, mirroring least-laxity intuition.  Included as
    an additional heuristic for the cost-function ablation (A2).
    """

    def evaluate(self, ctx: "PhaseContext", vertex: "Vertex") -> float:
        task = ctx.tasks[vertex.batch_index]
        return task.deadline - (ctx.phase_end_bound + vertex.scheduled_end)


class FifoEvaluator(VertexEvaluator):
    """No heuristic: keep successors in generation order.

    With a stable sort this preserves processor order (assignment-oriented)
    or EDF task order (sequence-oriented), exactly the "no cost function"
    configuration of the ablation.
    """

    def evaluate(self, ctx: "PhaseContext", vertex: "Vertex") -> float:
        return 0.0


def get_evaluator(name: str) -> VertexEvaluator:
    """Factory by short name, used by experiment configs and the CLI."""
    evaluators = {
        "load_balancing": LoadBalancingEvaluator,
        "earliest_finish": EarliestFinishEvaluator,
        "min_slack": MinSlackEvaluator,
        "fifo": FifoEvaluator,
    }
    try:
        return evaluators[name]()
    except KeyError:
        raise ValueError(
            f"unknown evaluator {name!r}; choose from {sorted(evaluators)}"
        ) from None
