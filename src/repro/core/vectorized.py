"""The ``vectorized`` search kernel: whole-frontier batch evaluation.

This module is the numpy half of the kernel registry
(:mod:`repro.core.kernels`).  It re-implements the phase search of
:func:`repro.core.search.run_search` with the per-candidate arithmetic —
the ``ce_k`` row math, the per-processor offset tuples, and the Figure-4
feasibility test — expressed as array operations over a whole candidate
frontier per step, instead of one Python-object vertex at a time.

Where the time goes, and where it comes back
--------------------------------------------

The scalar hot path spends most of each expansion on per-candidate Python
work: one :class:`~repro.core.search.Vertex` allocation, one evaluator
call, one heap tuple, and one best-so-far comparison for each of the ``m``
feasible candidates — almost all of which are never popped.  The batch
kernel removes that entirely:

* one ``(n, m)`` matrix ``p_l + c_lk`` is built per phase, so an expansion's
  scheduled ends are a single row-plus-offsets addition;
* the feasibility test is one vectorized comparison, and hopeless-task
  scans (every processor infeasible) proceed in geometrically growing row
  chunks instead of a per-task Python loop;
* a block of sibling candidates is stored as flat arrays; a candidate is
  materialized as a :class:`_Node` only when it is actually popped, and a
  block is only argsorted if it is popped a second time (a stable argmin
  serves the first pop).

Bit-identicality contract
-------------------------

The kernel must be indistinguishable from the scalar path in everything
but speed: identical schedules, identical
:class:`~repro.core.search.SearchStats` counters, identical budget
consumption, identical tie-breaking.  The load-bearing equivalences:

* every float is produced by the *same* IEEE-754 operations on the *same*
  operands in the *same* order as the scalar code (numpy float64 and
  CPython floats share arithmetic), so values match bit-for-bit;
* a stable ``argmin``/``argsort`` over a block equals the scalar heap's
  ``(value, insertion order)`` pop order;
* the scalar expander's best-case feasibility prune is *skipped* safely:
  when it fires, monotonicity of float addition proves every candidate of
  the probe infeasible, and the scalar code updates stats and budget
  identically in the pruned and the scanned-empty branches — so computing
  the full mask row changes nothing observable;
* the ``VirtualTimeBudget`` mid-probe exhaustion check is replicated in
  closed form (the predicate is monotone in the probe count), and any
  other budget type falls back to a faithful per-probe loop.

Anything the kernel does not recognise — a custom expander subclass, an
evaluator without ``supports_batch`` — is delegated to the scalar
:func:`~repro.core.search.run_search`, trading speed for guaranteed
correctness.  ``tests/differential/test_kernel_differential.py`` and the
golden fixtures enforce the contract end to end.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .affinity import UniformCommunicationModel, ZeroCommunicationModel
from .feasibility import EPSILON
from .kernels import SearchKernel
from .representations import (
    AssignmentOrientedExpander,
    SequenceOrientedExpander,
)
from .search import (
    Expander,
    PhaseContext,
    SearchBudget,
    SearchOutcome,
    SearchStats,
    Vertex,
    VirtualTimeBudget,
    make_root,
    run_search,
)

#: Shared empty index array for expansions that prune no tasks.
_EMPTY_INDICES = np.empty(0, dtype=np.intp)


class _Node:
    """A materialized (popped) vertex of the batch search.

    Only popped candidates — and therefore only vertices that were actually
    expanded, plus the final best — ever become objects; everything else
    lives in its block's arrays.  ``hopeless`` records the tasks pruned by
    the expansion that *produced* this node, which is exactly the set of
    extra bits the scalar code ORs into the child's ``scheduled_mask``.
    """

    __slots__ = (
        "parent",
        "index",
        "processor",
        "depth",
        "offsets",
        "se",
        "max_offset",
        "value",
        "unscheduled",
        "hopeless",
    )

    def __init__(
        self,
        parent,
        index,
        processor,
        depth,
        offsets,
        se,
        max_offset,
        value,
        unscheduled,
        hopeless,
    ):
        self.parent = parent
        self.index = index
        self.processor = processor
        self.depth = depth
        self.offsets = offsets
        self.se = se
        self.max_offset = max_offset
        self.value = value
        self.unscheduled = unscheduled
        self.hopeless = hopeless


class _Block:
    """One pushed frontier of sibling candidates, stored as flat arrays.

    Exactly one of three shapes:

    * root block — ``node`` holds the pre-built root;
    * assignment block — one ``task``, candidate ``procs`` vary;
    * sequence block — one ``proc``, candidate ``tasks`` vary.

    Pop order must equal the scalar heap's ``(value, insertion order)``
    order.  The first pop is served by a cached stable ``argmin``
    (``first``); re-popped blocks build a stable ``argsort`` once and walk
    it, skipping entries recorded in ``popped`` (which doubles as the
    eviction mechanism for the CL size bound).
    """

    __slots__ = (
        "parent",
        "node",
        "task",
        "procs",
        "tasks",
        "proc",
        "ses",
        "values",
        "hopeless",
        "child_unscheduled",
        "first",
        "order",
        "rank",
        "popped",
        "live",
    )

    def __init__(
        self,
        parent,
        node,
        task,
        procs,
        tasks,
        proc,
        ses,
        values,
        hopeless,
        child_unscheduled,
        live,
    ):
        self.parent = parent
        self.node = node
        self.task = task
        self.procs = procs
        self.tasks = tasks
        self.proc = proc
        self.ses = ses
        self.values = values
        self.hopeless = hopeless
        self.child_unscheduled = child_unscheduled
        self.first = None
        self.order = None
        self.rank = 0
        self.popped = None
        self.live = live


def _pop_node(block: _Block) -> _Node:
    """Pop the best remaining candidate of ``block`` and materialize it."""
    if block.node is not None:
        block.live = 0
        return block.node
    values = block.values
    popped = block.popped
    if popped is None:
        i = block.first
        if i is None:
            i = int(values.argmin()) if values.shape[0] > 1 else 0
        block.popped = {i}
    else:
        order = block.order
        if order is None:
            order = block.order = values.argsort(kind="stable")
        rank = block.rank
        while True:
            i = int(order[rank])
            rank += 1
            if i not in popped:
                break
        block.rank = rank
        popped.add(i)
    block.live -= 1
    parent = block.parent
    offsets = parent.offsets.copy()
    if block.tasks is None:
        index = block.task
        processor = int(block.procs[i])
        child_unscheduled = block.child_unscheduled
    else:
        index = int(block.tasks[i])
        processor = block.proc
        remaining = parent.unscheduled
        child_unscheduled = remaining[remaining != index]
    se = block.ses[i]
    offsets[processor] = se
    parent_max = parent.max_offset
    return _Node(
        parent,
        index,
        processor,
        parent.depth + 1,
        offsets,
        se,
        parent_max if parent_max >= se else se,
        values[i],
        child_unscheduled,
        block.hopeless,
    )


def _evict(blocks: list, overflow: int) -> None:
    """Drop ``overflow`` candidates, worst-of-oldest-block first.

    Mirrors ``CandidateList._drop_oldest``: the oldest block loses its
    worst-valued members (ties drop the latest insertion first — the tail
    of a stable ascending sort), and whole blocks go once emptied.
    """
    while overflow and blocks:
        oldest = blocks[0]
        if oldest.live <= overflow:
            overflow -= oldest.live
            oldest.live = 0
            del blocks[0]
            continue
        order = oldest.order
        if order is None:
            order = oldest.order = oldest.values.argsort(kind="stable")
        popped = oldest.popped
        if popped is None:
            popped = oldest.popped = set()
        j = order.shape[0] - 1
        need = overflow
        while need:
            i = int(order[j])
            j -= 1
            if i not in popped:
                popped.add(i)
                need -= 1
        oldest.live -= overflow
        overflow = 0


def _vt_probe_cap(budget: VirtualTimeBudget, m: int, cap: int) -> int:
    """Largest probe count the scalar per-probe budget check would allow.

    The scalar loop admits probe ``j >= 2`` iff the budget is not exhausted
    after ``j - 1`` probes of ``m`` vertices each; for a virtual-time budget
    that predicate is monotone in the probe count, so the window is computed
    in closed form (estimate, then exact boundary adjustment — float
    division may be off by a few ULPs) instead of per probe.  ``cap`` is
    the caller's own bound (unscheduled count / ``max_task_probes``),
    assumed >= 2; probe 1 is always admitted, exactly like the scalar loop.
    """
    per_vertex = budget.per_vertex_cost
    base = budget._vertices
    consumed = budget._consumed
    limit = budget.quantum - EPSILON
    if (base + m) * per_vertex + consumed >= limit:
        return 1
    t = int((limit - consumed) / per_vertex - base) // m
    if t > cap - 1:
        t = cap - 1
    elif t < 1:
        t = 1
    while t > 1 and (base + t * m) * per_vertex + consumed >= limit:
        t -= 1
    while t < cap - 1 and (base + (t + 1) * m) * per_vertex + consumed < limit:
        t += 1
    return t + 1


def _materialize(ref, ctx: PhaseContext, rows) -> Vertex:
    """Build the scalar :class:`Vertex` chain for the best node found.

    ``ref`` is either a :class:`_Node` or an un-popped ``(block, i)`` pair.
    Every field is converted to the exact Python float / mask the scalar
    path would have produced: scheduled ends and values come from the block
    arrays, communication costs from the phase's ``(n, m)`` communication
    matrix ``rows`` (the same float64 values ``ctx.comm_row`` yields,
    without re-deriving a full row per path vertex), and each child's mask
    ORs in the hopeless tasks of the expansion that produced it.
    """
    specs = []
    if type(ref) is tuple:
        block, i = ref
        if block.tasks is None:
            index = block.task
            processor = int(block.procs[i])
        else:
            index = int(block.tasks[i])
            processor = block.proc
        se = block.ses[i]
        parent_max = block.parent.max_offset
        specs.append(
            (
                index,
                processor,
                se,
                block.values[i],
                parent_max if parent_max >= se else se,
                block.hopeless,
            )
        )
        node = block.parent
    else:
        node = ref
    while node.parent is not None:
        specs.append(
            (
                node.index,
                node.processor,
                node.se,
                node.value,
                node.max_offset,
                node.hopeless,
            )
        )
        node = node.parent
    specs.reverse()
    vertex = make_root(ctx.initial_offsets)
    mask = 0
    for index, processor, se, value, max_offset, hopeless in specs:
        for pruned in hopeless:
            mask |= 1 << int(pruned)
        mask |= 1 << index
        vertex = Vertex(
            vertex,
            index,
            processor,
            vertex.depth + 1,
            mask,
            None,
            float(se),
            float(rows[index, processor]),
            float(value),
            float(max_offset),
        )
    return vertex


def _batch_search(
    ctx: PhaseContext,
    expander: Expander,
    budget: SearchBudget,
    max_candidates: Optional[int],
    max_iterations: Optional[int],
) -> SearchOutcome:
    """The array-backed replica of :func:`repro.core.search.run_search`."""
    n = ctx.n
    m = ctx.num_processors
    bound = ctx.phase_end_bound
    evaluator = ctx.evaluator
    tasks = ctx.tasks
    # Per-phase arrays: pr[l, k] = p_l + c_lk with the exact floats of the
    # scalar path; de carries the hoisted Figure-4 comparison constant
    # d_l + EPSILON.  The two shipped communication models produce only the
    # constants 0.0 / C, so their matrices are assembled directly; anything
    # else goes through the same comm_row cache the scalar path fills.
    comm = ctx.comm
    if type(comm) is UniformCommunicationModel:
        rows = np.full((n, m), comm.remote_cost, dtype=np.float64)
        for i, task in enumerate(tasks):
            if task.affinity:
                affine = list(task.affinity)
                if min(affine) < 0 or max(affine) >= m:
                    affine = [k for k in affine if 0 <= k < m]
                    if not affine:
                        continue
                rows[i, affine] = 0.0
    elif type(comm) is ZeroCommunicationModel:
        rows = np.zeros((n, m), dtype=np.float64)
    else:
        comm_row = ctx.comm_row
        rows = np.array(
            [comm_row(i)[0] for i in range(n)], dtype=np.float64
        )
    proc_times = np.fromiter(
        (t.processing_time for t in tasks), np.float64, count=n
    )
    deadlines = np.fromiter((t.deadline for t in tasks), np.float64, count=n)
    pr = proc_times[:, None] + rows
    de = deadlines + EPSILON

    assignment = type(expander) is AssignmentOrientedExpander
    if assignment:
        max_task_probes = expander.max_task_probes
        all_procs = np.arange(m, dtype=np.intp)
        beam = start_proc = 0
    else:
        max_task_probes = None
        beam = expander.beam_width if expander.beam_width is not None else m
        start_proc = expander.start_processor
    virtual = type(budget) is VirtualTimeBudget
    if virtual:
        vt_cost = budget.per_vertex_cost
        vt_limit = budget.quantum - EPSILON

    root = _Node(
        None,
        -1,
        -1,
        0,
        np.asarray(ctx.initial_offsets, dtype=np.float64),
        0.0,
        max(ctx.initial_offsets),
        0.0,
        np.arange(n, dtype=np.intp),
        _EMPTY_INDICES,
    )
    blocks = [
        _Block(None, root, None, None, None, None, None, None, None, None, 1)
    ]
    size = 1
    dropped = 0
    best_ref = root
    best_depth = 0
    best_value = 0.0
    s_vertices = s_expansions = s_backtracks = s_probes = 0
    s_rejections = s_pruned = 0
    dead_end = complete = maximal = False
    iterations = 0

    while True:
        # Inlined ``budget.exhausted()`` for the virtual-time fast path —
        # same predicate, without a method call per iteration.
        if virtual:
            if budget._vertices * vt_cost + budget._consumed >= vt_limit:
                break
        elif budget.exhausted():
            break
        if max_iterations is not None and iterations >= max_iterations:
            break
        iterations += 1
        if not blocks:
            dead_end = True
            break
        top = blocks[-1]
        node = _pop_node(top)
        size -= 1
        if top.live == 0:
            blocks.pop()
        if node.depth >= n:
            best_ref = node
            complete = True
            break
        unscheduled = node.unscheduled
        remaining = unscheduled.shape[0]
        offsets = node.offsets
        if assignment:
            # --- assignment-oriented expansion: scan tasks for the first
            # with any feasible processor; the probe window replicates the
            # scalar max_task_probes / budget truncation exactly.
            procs = se_row = None
            found = -1
            if virtual:
                window = remaining
                if max_task_probes is not None and max_task_probes < window:
                    window = max_task_probes
                if (
                    window > 1
                    and (budget._vertices + window * m) * vt_cost
                    + budget._consumed
                    >= vt_limit
                ):
                    allowed = _vt_probe_cap(budget, m, window)
                    if allowed < window:
                        window = allowed
                pos = 0
                chunk = 1
                while pos < window:
                    end = pos + chunk
                    if end > window:
                        end = window
                    if end - pos == 1:
                        task = unscheduled[pos]
                        row = pr[task] + offsets
                        feas = (row + bound) <= de[task]
                        if feas.all():
                            found = pos
                            found_task = task
                            se_row = row
                            procs = None
                        else:
                            hits = feas.nonzero()[0]
                            if hits.shape[0]:
                                found = pos
                                found_task = task
                                se_row = row
                                procs = hits
                    else:
                        idx = unscheduled[pos:end]
                        se_chunk = pr[idx] + offsets
                        feas_chunk = (se_chunk + bound) <= de[idx][:, None]
                        hit_rows = feas_chunk.any(axis=1).nonzero()[0]
                        if hit_rows.shape[0]:
                            r = int(hit_rows[0])
                            found = pos + r
                            found_task = idx[r]
                            se_row = se_chunk[r]
                            procs = feas_chunk[r].nonzero()[0]
                    if found >= 0:
                        break
                    pos = end
                    chunk <<= 3
                probes = found + 1 if found >= 0 else window
                budget._vertices += probes * m
            else:
                # Generic budgets (wall clock, custom): keep the scalar
                # per-probe charge/exhausted call sequence verbatim.
                probes = 0
                exhausted = budget.exhausted
                for pos in range(remaining):
                    if (
                        max_task_probes is not None
                        and probes >= max_task_probes
                    ):
                        break
                    if probes and exhausted():
                        break
                    probes += 1
                    budget.charge(m)
                    task = unscheduled[pos]
                    row = pr[task] + offsets
                    hits = ((row + bound) <= de[task]).nonzero()[0]
                    if hits.shape[0]:
                        found = pos
                        found_task = task
                        se_row = row
                        procs = hits
                        break
            s_vertices += probes * m
            s_probes += probes
            s_expansions += 1
            if found < 0:
                s_rejections += probes * m
                s_pruned += probes
                if probes == remaining:
                    # Exhaustive empty expansion: provably maximal vertex.
                    if node.depth > best_depth or (
                        node.depth == best_depth and node.value < best_value
                    ):
                        best_ref = node
                        best_depth = node.depth
                        best_value = node.value
                    maximal = True
                    break
                s_backtracks += 1
                continue
            feas_count = m if procs is None else procs.shape[0]
            s_rejections += found * m + (m - feas_count)
            s_pruned += found
            ses = se_row if feas_count == m else se_row[procs]
            values = evaluator.evaluate_batch(
                ctx, ses, node.max_offset, deadlines[found_task]
            )
            block = _Block(
                node,
                None,
                int(found_task),
                all_procs if feas_count == m else procs,
                None,
                None,
                ses,
                values,
                unscheduled[:found] if found else _EMPTY_INDICES,
                unscheduled[found + 1 :],
                feas_count,
            )
        else:
            # --- sequence-oriented expansion: round-robin processor,
            # beam over the first unscheduled tasks; never exhaustive.
            processor = (start_proc + node.depth) % m
            idx = unscheduled if remaining <= beam else unscheduled[:beam]
            probed = idx.shape[0]
            if probed:
                ses_all = pr[idx, processor] + offsets[processor]
                feas = (ses_all + bound) <= de[idx]
                feas_count = int(np.count_nonzero(feas))
            else:
                feas_count = 0
            budget.charge(probed)
            s_vertices += probed
            if probed:
                s_probes += 1
            s_rejections += probed - feas_count
            s_expansions += 1
            if feas_count == 0:
                s_backtracks += 1
                continue
            if feas_count == probed:
                chosen = idx
                ses = ses_all
            else:
                sel = feas.nonzero()[0]
                chosen = idx[sel]
                ses = ses_all[sel]
            values = evaluator.evaluate_batch(
                ctx, ses, node.max_offset, deadlines[chosen]
            )
            block = _Block(
                node,
                None,
                None,
                None,
                chosen,
                processor,
                ses,
                values,
                _EMPTY_INDICES,
                None,
                feas_count,
            )
        blocks.append(block)
        size += block.live
        # Best-so-far: deeper wins, ties by strictly smaller value — the
        # block's stable argmin is exactly the scalar generation-order scan.
        child_depth = node.depth + 1
        if child_depth >= best_depth:
            first = int(block.values.argmin()) if block.live > 1 else 0
            block.first = first
            value = block.values[first]
            if child_depth > best_depth or value < best_value:
                best_ref = (block, first)
                best_depth = child_depth
                best_value = value
        if max_candidates is not None and size > max_candidates:
            overflow = size - max_candidates
            _evict(blocks, overflow)
            size -= overflow
            dropped += overflow

    best = _materialize(best_ref, ctx, rows)
    stats = SearchStats(
        vertices_generated=s_vertices,
        expansions=s_expansions,
        backtracks=s_backtracks,
        task_probes=s_probes,
        feasibility_rejections=s_rejections,
        tasks_pruned=s_pruned,
        dead_end=dead_end,
        complete=complete,
        maximal=maximal,
        max_depth=best.depth,
        processors_touched=len({v.processor for v in best.path()}),
    )
    return SearchOutcome(
        best=best,
        stats=stats,
        time_used=min(budget.used(), ctx.quantum),
        candidates_dropped=dropped,
    )


class VectorizedKernel(SearchKernel):
    """Batch kernel: numpy frontier evaluation, bit-identical outcomes.

    Engages only for the configurations it can replicate exactly — the two
    built-in expanders (exact types, not subclasses) and evaluators with
    ``supports_batch`` — and silently delegates everything else to the
    scalar :func:`~repro.core.search.run_search`, so correctness never
    depends on recognising a configuration.

    Phases smaller than ``small_phase_cutoff`` tasks are also delegated:
    array setup costs more than it saves there (pipeline phases are
    frequently a handful of tasks), and the two kernels are bit-identical
    by contract, so the routing is a pure performance heuristic.  Pass
    ``small_phase_cutoff=0`` to force batching regardless of size (the
    differential tests do, to guarantee they exercise the batch path).
    """

    name = "vectorized"

    #: Phases with fewer tasks than this run on the scalar path.
    SMALL_PHASE_CUTOFF = 64

    def __init__(self, small_phase_cutoff: Optional[int] = None):
        self.small_phase_cutoff = (
            self.SMALL_PHASE_CUTOFF
            if small_phase_cutoff is None
            else small_phase_cutoff
        )

    def search(
        self,
        ctx: PhaseContext,
        expander: Expander,
        budget: SearchBudget,
        max_candidates: Optional[int] = None,
        max_iterations: Optional[int] = None,
    ) -> SearchOutcome:
        """Run one phase, batched when supported, scalar otherwise."""
        if (
            ctx.n >= max(self.small_phase_cutoff, 1)
            and type(expander)
            in (AssignmentOrientedExpander, SequenceOrientedExpander)
            and getattr(ctx.evaluator, "supports_batch", False)
        ):
            return _batch_search(
                ctx, expander, budget, max_candidates, max_iterations
            )
        return run_search(
            ctx,
            expander,
            budget,
            max_candidates=max_candidates,
            max_iterations=max_iterations,
        )
