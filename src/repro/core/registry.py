"""Scheduler registry: every scheduling policy the repo can run.

Mirrors the :class:`~repro.runtime.backend.ExecutionBackend` registry in
``runtime/backend.py``: built-in schedulers load lazily (naming
``"rtsads"`` must not import the zoo, and vice versa), third parties call
:func:`register_scheduler` with a builder, and every experiment, figure,
backend, and CLI flag can sweep any registered name immediately.

A builder receives a :class:`SchedulerContext` — the frozen bag of
construction inputs the experiment layer knows about — and returns a
:class:`~repro.core.scheduler.Scheduler`.  Keeping the context in
``core/`` means builders never import the experiment layer, so the
dependency arrow stays ``experiments -> core``.
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass
from typing import Callable, Dict, Optional

from .affinity import CommunicationModel
from .scheduler import DEFAULT_PER_VERTEX_COST, Scheduler

#: name -> module that registers it on import.  Order is meaningful: the
#: first five entries preserve the historical ``SCHEDULER_NAMES`` tuple
#: (golden fixtures, docs, and CLI help all enumerate in this order).
_BUILTIN_MODULES = {
    "rtsads": "repro.core.rtsads",
    "dcols": "repro.core.dcols",
    "greedy_edf": "repro.core.baselines",
    "myopic": "repro.core.baselines",
    "random": "repro.core.baselines",
    "edf": "repro.core.zoo",
    "partitioned-edf": "repro.core.zoo",
    "candidate-sort": "repro.core.zoo",
}

#: The schedulers every installation has (CLI choices, config validation).
SCHEDULER_NAMES = tuple(_BUILTIN_MODULES)

_REGISTRY: Dict[str, Callable[["SchedulerContext"], Scheduler]] = {}


@dataclass(frozen=True)
class SchedulerContext:
    """Construction inputs a scheduler builder may draw from.

    ``evaluator`` and ``quantum_policy`` are the ablation overrides; the
    search schedulers (RT-SADS, D-COLS) honour both, the one-pass list
    schedulers take only the quantum policy — same contract the old
    if-chain in ``experiments/runner.py`` implemented.  ``seed`` feeds
    stochastic schedulers (``"random"``) so repetitions stay reproducible.
    """

    comm: CommunicationModel
    per_vertex_cost: float = DEFAULT_PER_VERTEX_COST
    evaluator: Optional[object] = None
    quantum_policy: Optional[object] = None
    seed: int = 0
    #: Search-kernel name (:mod:`repro.core.kernels`); ``None`` leaves the
    #: scheduler on its default (scalar) phase loop.  One-pass list
    #: schedulers have no search to vectorize and ignore it.
    kernel: Optional[str] = None


def register_scheduler(
    name: str, builder: Callable[[SchedulerContext], Scheduler]
) -> None:
    """Register (or replace) a scheduler builder under ``name``."""
    if not name:
        raise ValueError("scheduler name must be a non-empty string")
    _REGISTRY[name] = builder


def get_scheduler_builder(
    name: str,
) -> Callable[[SchedulerContext], Scheduler]:
    """Resolve a scheduler name to its registered builder."""
    if name not in _REGISTRY:
        module = _BUILTIN_MODULES.get(name)
        if module is None:
            known = sorted(set(_REGISTRY) | set(_BUILTIN_MODULES))
            raise ValueError(
                f"unknown scheduler {name!r}; choose from {known}"
            )
        importlib.import_module(module)  # module registers itself
    return _REGISTRY[name]


def make_scheduler(name: str, context: SchedulerContext) -> Scheduler:
    """Instantiate a registered scheduler from a context."""
    return get_scheduler_builder(name)(context)


def registered_names() -> tuple:
    """Every currently resolvable name: built-ins plus third-party."""
    return tuple(
        dict.fromkeys(list(_BUILTIN_MODULES) + sorted(_REGISTRY))
    )
