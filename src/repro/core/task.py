"""Task model for real-time distributed scheduling.

This module implements the task model of Section 2 of the paper: a set ``T``
of ``n`` aperiodic, non-preemptable, independent real-time tasks ``T_i``, each
characterized by a processing time ``p_i``, an arrival time ``a_i``, an
absolute deadline ``d_i``, and an affinity set — the processors ``P_j`` whose
local memories hold the data objects ``T_i`` references.  The communication
cost ``c_ij`` is derived from the affinity set by a communication model (see
:mod:`repro.core.affinity`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Sequence


class TaskValidationError(ValueError):
    """Raised when a task or task set violates the model's invariants."""


@dataclass(frozen=True)
class Task:
    """One aperiodic, non-preemptable real-time task.

    Parameters
    ----------
    task_id:
        Unique identifier within a workload.
    processing_time:
        ``p_i`` — execution time on any processor, excluding communication.
    arrival_time:
        ``a_i`` — absolute time at which the task becomes known to the
        scheduler.  Bursty workloads use ``a_i = 0`` for all tasks.
    deadline:
        ``d_i`` — absolute deadline by which execution must complete.
    affinity:
        Identifiers of the processors whose local memory holds this task's
        referenced data objects.  Executing on one of these processors incurs
        zero communication cost; executing elsewhere incurs the model's
        constant cost ``C``.
    tag:
        Optional free-form label (e.g. the transaction kind that produced
        this task).  Not interpreted by the scheduler.
    """

    task_id: int
    processing_time: float
    arrival_time: float
    deadline: float
    affinity: frozenset = field(default_factory=frozenset)
    tag: str = ""

    def __post_init__(self) -> None:
        if self.processing_time <= 0:
            raise TaskValidationError(
                f"task {self.task_id}: processing_time must be positive, "
                f"got {self.processing_time}"
            )
        if self.arrival_time < 0:
            raise TaskValidationError(
                f"task {self.task_id}: arrival_time must be non-negative, "
                f"got {self.arrival_time}"
            )
        if self.deadline <= self.arrival_time:
            raise TaskValidationError(
                f"task {self.task_id}: deadline ({self.deadline}) must be "
                f"after arrival ({self.arrival_time})"
            )
        if not isinstance(self.affinity, frozenset):
            # Accept any iterable for convenience but store a frozenset so
            # Task stays hashable and immutable.
            object.__setattr__(self, "affinity", frozenset(self.affinity))

    def has_affinity(self, processor: int) -> bool:
        """Return whether this task's data resides on ``processor``."""
        return processor in self.affinity

    def slack(self, now: float) -> float:
        """Maximum delay before execution must start to meet the deadline.

        The paper (Section 4.2, footnote) defines slack as the maximum time
        during which the execution of a task can be delayed without missing
        its deadline, i.e. ``d_i - now - p_i`` (communication excluded, which
        makes this the *optimistic* slack attained on an affine processor).
        """
        return self.deadline - now - self.processing_time

    def laxity(self) -> float:
        """Relative slack at arrival: ``(d_i - a_i) / p_i``."""
        return (self.deadline - self.arrival_time) / self.processing_time

    def is_expired(self, now: float) -> bool:
        """Whether the deadline can no longer be met even with zero wait.

        Mirrors the batch-cleanup predicate of Section 4.1:
        ``p_i + t_c > d_i``.
        """
        return now + self.processing_time > self.deadline


class TaskSet:
    """An ordered collection of tasks with workload-level validation.

    A :class:`TaskSet` is what workload generators produce and what the
    on-line runtime feeds, in arrival order, to the scheduler's batches.
    """

    def __init__(self, tasks: Iterable[Task] = ()) -> None:
        self._tasks: list[Task] = list(tasks)
        self._validate()

    def _validate(self) -> None:
        seen: set[int] = set()
        for task in self._tasks:
            if task.task_id in seen:
                raise TaskValidationError(
                    f"duplicate task_id {task.task_id} in task set"
                )
            seen.add(task.task_id)

    def __len__(self) -> int:
        return len(self._tasks)

    def __iter__(self) -> Iterator[Task]:
        return iter(self._tasks)

    def __getitem__(self, index: int) -> Task:
        return self._tasks[index]

    def __contains__(self, task: Task) -> bool:
        return task in self._tasks

    def add(self, task: Task) -> None:
        """Append a task, enforcing task-id uniqueness."""
        if any(existing.task_id == task.task_id for existing in self._tasks):
            raise TaskValidationError(
                f"duplicate task_id {task.task_id} in task set"
            )
        self._tasks.append(task)

    def by_arrival(self) -> list[Task]:
        """Tasks sorted by arrival time (ties broken by task id)."""
        return sorted(self._tasks, key=lambda t: (t.arrival_time, t.task_id))

    def by_deadline(self) -> list[Task]:
        """Tasks sorted by absolute deadline (EDF order)."""
        return sorted(self._tasks, key=lambda t: (t.deadline, t.task_id))

    def ids(self) -> list[int]:
        """Task ids in insertion order."""
        return [task.task_id for task in self._tasks]

    def total_processing_time(self) -> float:
        """Sum of ``p_i`` over the set — a lower bound on total work."""
        return sum(task.processing_time for task in self._tasks)

    def arrived_by(self, now: float) -> list[Task]:
        """Tasks whose arrival time is at or before ``now``."""
        return [task for task in self._tasks if task.arrival_time <= now]

    def min_laxity(self) -> float:
        """Smallest relative laxity across the set."""
        if not self._tasks:
            raise TaskValidationError("min_laxity of an empty task set")
        return min(task.laxity() for task in self._tasks)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TaskSet(n={len(self._tasks)})"


def make_task(
    task_id: int,
    processing_time: float,
    deadline: float,
    arrival_time: float = 0.0,
    affinity: Sequence[int] | frozenset = frozenset(),
    tag: str = "",
) -> Task:
    """Convenience constructor used heavily by tests and examples."""
    return Task(
        task_id=task_id,
        processing_time=processing_time,
        arrival_time=arrival_time,
        deadline=deadline,
        affinity=frozenset(affinity),
        tag=tag,
    )
