"""Scheduling-domain partitioning: split ``m`` workers into ``k`` shards.

The paper dedicates one scheduling processor to the whole system, so the
master's vertices/s caps total throughput no matter how many workers
join.  Sharding breaks that ceiling by partitioning the worker set into
*scheduling domains*, each driven by its own RT-SADS master; this module
is the backend-neutral core of that refactor — the partition itself.

A :class:`DomainAssignment` is a frozen, picklable description of one
partition: every worker id in ``range(num_workers)`` appears in exactly
one domain, and the tuple-of-tuples layout makes the assignment hashable
so it can ride inside cache digests and cross the spawn boundary.

Three policies build assignments (:func:`partition_workers`):

``hash``
    ``worker % k`` — the naive baseline: ignores the workload entirely.

``worst-fit``
    Worst-fit-decreasing utilization packing (Chen's sporadic bin-packing
    heuristic): each worker's *attracted utilization* is the share of
    workload processing time whose affinity points at it; workers are
    placed heaviest-first onto the least-utilized domain, under a
    ``ceil(m / k)`` size cap so no domain starves another of workers.

``affinity``
    Communication-affinity clustering (Lupu et al.'s partitioning-scheme
    evaluation): workers that co-occur in task affinity sets attract each
    other; a greedy agglomeration seeds ``k`` domains with the most
    "social" unplaced workers and grows each by strongest co-occurrence,
    so tasks tend to find their whole affinity set inside one domain and
    pay no remote cost after sharding.

All three are pure functions of ``(num_workers, k, tasks)`` — the
workload is itself a pure function of the seed, so assignments are
deterministic per seed by construction (the property suite asserts it).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from .task import Task

#: Registered partitioning policies, CLI-visible order.
PARTITION_POLICIES = ("hash", "worst-fit", "affinity")


@dataclass(frozen=True)
class DomainAssignment:
    """One partition of ``range(num_workers)`` into scheduling domains.

    ``domains[d]`` is the sorted tuple of global worker ids owned by
    domain ``d``.  Frozen and hashable: an assignment is part of a run's
    identity (it feeds routing and report merging) and must survive
    pickling into spawn-pool children unchanged.
    """

    num_workers: int
    policy: str
    domains: Tuple[Tuple[int, ...], ...]

    def __post_init__(self) -> None:
        if self.num_workers <= 0:
            raise ValueError("num_workers must be positive")
        seen: Dict[int, int] = {}
        for index, members in enumerate(self.domains):
            if not members:
                raise ValueError(f"domain {index} is empty")
            if tuple(sorted(members)) != tuple(members):
                raise ValueError(f"domain {index} members must be sorted")
            for worker in members:
                if worker in seen:
                    raise ValueError(
                        f"worker {worker} appears in domains "
                        f"{seen[worker]} and {index}"
                    )
                seen[worker] = index
        if set(seen) != set(range(self.num_workers)):
            missing = sorted(set(range(self.num_workers)) - set(seen))
            raise ValueError(f"workers {missing} not assigned to any domain")

    @property
    def num_domains(self) -> int:
        return len(self.domains)

    def domain_of(self, worker_id: int) -> int:
        """The domain owning ``worker_id``; raises on unknown workers."""
        for index, members in enumerate(self.domains):
            if worker_id in members:
                return index
        raise KeyError(f"worker {worker_id} is not in any domain")

    def workers_of(self, domain: int) -> Tuple[int, ...]:
        """Sorted global worker ids owned by ``domain``."""
        return self.domains[domain]

    def route(self, task: Task) -> int:
        """Home domain for ``task``: affinity plurality, id-hash fallback.

        The domain holding the most of the task's affinity set wins (it
        minimizes expected communication cost after sharding); ties break
        to the lowest domain id for determinism, and tasks whose affinity
        overlaps no domain (or is empty) hash on ``task_id`` so load
        still spreads.
        """
        best = -1
        best_overlap = 0
        for index, members in enumerate(self.domains):
            overlap = len(task.affinity.intersection(members))
            if overlap > best_overlap:
                best_overlap = overlap
                best = index
        if best >= 0:
            return best
        return task.task_id % self.num_domains

    def as_dict(self) -> Dict[str, object]:
        """Plain-dict view for trace events and report extras."""
        return {
            "num_workers": self.num_workers,
            "policy": self.policy,
            "domains": [list(members) for members in self.domains],
        }


def partition_workers(
    num_workers: int,
    num_domains: int,
    policy: str = "hash",
    tasks: Optional[Sequence[Task]] = None,
) -> DomainAssignment:
    """Partition ``num_workers`` workers into ``num_domains`` domains.

    ``tasks`` informs the workload-aware policies (``worst-fit`` and
    ``affinity``); both degrade gracefully to balanced round-robin
    behaviour when it is ``None`` or carries no affinity information.
    Deterministic: equal inputs always produce equal assignments.
    """
    if num_workers <= 0:
        raise ValueError("num_workers must be positive")
    if num_domains <= 0:
        raise ValueError("num_domains must be positive")
    if num_domains > num_workers:
        raise ValueError(
            f"cannot split {num_workers} workers into {num_domains} "
            "non-empty domains"
        )
    if policy not in PARTITION_POLICIES:
        raise ValueError(
            f"policy must be one of {PARTITION_POLICIES}, got {policy!r}"
        )
    task_list = list(tasks) if tasks is not None else []
    if policy == "hash":
        members = _hash_partition(num_workers, num_domains)
    elif policy == "worst-fit":
        members = _worst_fit_partition(num_workers, num_domains, task_list)
    else:
        members = _affinity_partition(num_workers, num_domains, task_list)
    return DomainAssignment(
        num_workers=num_workers,
        policy=policy,
        domains=tuple(tuple(sorted(group)) for group in members),
    )


def _hash_partition(num_workers: int, num_domains: int) -> List[List[int]]:
    """``worker % k``: the workload-blind baseline."""
    groups: List[List[int]] = [[] for _ in range(num_domains)]
    for worker in range(num_workers):
        groups[worker % num_domains].append(worker)
    return groups


def _attracted_utilization(
    num_workers: int, tasks: Sequence[Task]
) -> List[float]:
    """Per-worker share of workload processing time its affinity attracts.

    A task's processing time splits evenly over its affinity set (any of
    those workers can serve it for free); affinity-less tasks attract no
    one in particular and are ignored.
    """
    load = [0.0] * num_workers
    for task in tasks:
        homes = [w for w in task.affinity if 0 <= w < num_workers]
        if not homes:
            continue
        share = task.processing_time / len(homes)
        for worker in homes:
            load[worker] += share
    return load


def _worst_fit_partition(
    num_workers: int, num_domains: int, tasks: Sequence[Task]
) -> List[List[int]]:
    """Worst-fit-decreasing packing of workers by attracted utilization."""
    load = _attracted_utilization(num_workers, tasks)
    cap = math.ceil(num_workers / num_domains)
    # Heaviest first; ties break to the lower worker id so the packing is
    # a pure function of the (workload, m, k) triple.
    order = sorted(range(num_workers), key=lambda w: (-load[w], w))
    groups: List[List[int]] = [[] for _ in range(num_domains)]
    totals = [0.0] * num_domains
    for position, worker in enumerate(order):
        # Once only as many workers remain as there are empty domains,
        # each must seed one — otherwise uniform loads would fill early
        # domains to cap and leave trailing domains empty.
        remaining = num_workers - position
        empty = [d for d in range(num_domains) if not groups[d]]
        if empty and len(empty) >= remaining:
            candidates = empty
        else:
            candidates = [
                d for d in range(num_domains) if len(groups[d]) < cap
            ]
        target = min(candidates, key=lambda d: (totals[d], d))
        groups[target].append(worker)
        totals[target] += load[worker]
    return groups


def _affinity_partition(
    num_workers: int, num_domains: int, tasks: Sequence[Task]
) -> List[List[int]]:
    """Greedy agglomeration by pairwise affinity co-occurrence.

    Workers appearing together in many affinity sets should share a
    domain: a task whose whole affinity set lands in one domain pays zero
    communication after sharding.  Each domain is seeded with the most
    connected unplaced worker, then grown by strongest attachment to its
    current members, under the same ``ceil(m / k)`` cap as worst-fit.
    """
    weight: Dict[Tuple[int, int], float] = {}
    degree = [0.0] * num_workers
    for task in tasks:
        homes = sorted(w for w in task.affinity if 0 <= w < num_workers)
        for i, a in enumerate(homes):
            degree[a] += task.processing_time
            for b in homes[i + 1:]:
                key = (a, b)
                weight[key] = weight.get(key, 0.0) + task.processing_time

    def pair_weight(a: int, b: int) -> float:
        return weight.get((a, b) if a < b else (b, a), 0.0)

    cap = math.ceil(num_workers / num_domains)
    unplaced = set(range(num_workers))
    groups: List[List[int]] = []
    for _ in range(num_domains):
        seed = min(unplaced, key=lambda w: (-degree[w], w))
        unplaced.discard(seed)
        group = [seed]
        while len(group) < cap and unplaced:
            # Leave enough workers for the remaining domains' seeds.
            remaining_domains = num_domains - len(groups) - 1
            if len(unplaced) <= remaining_domains:
                break
            best = min(
                unplaced,
                key=lambda w: (
                    -sum(pair_weight(w, member) for member in group),
                    -degree[w],
                    w,
                ),
            )
            unplaced.discard(best)
            group.append(best)
        groups.append(group)
    # Anything left (possible when caps round awkwardly) goes to the
    # smallest domain, lowest id first.
    for worker in sorted(unplaced):
        target = min(range(num_domains), key=lambda d: (len(groups[d]), d))
        groups[target].append(worker)
    return groups
