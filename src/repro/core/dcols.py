"""D-COLS: Distributed Continuous On-Line Scheduling (the paper's baseline).

D-COLS searches a **sequence-oriented** task space (paper Figure 1): each
tree level selects a processor in round-robin order and branches on which
task to run there.  The paper allocates D-COLS the *same* quantum formula as
RT-SADS and runs it under the same feasibility test, isolating the effect of
the search representation — we do exactly that here.  Its features follow
the sequence-oriented techniques of Zhao & Ramamritham and Shen et al. that
the paper cites: bounded lookahead (a beam over EDF-ordered tasks) and
limited backtracking via the shared candidate list.
"""

from __future__ import annotations

from typing import Optional

from ..observability import Instrumentation
from .affinity import CommunicationModel
from .cost import LoadBalancingEvaluator, VertexEvaluator
from .quantum import QuantumPolicy, SelfAdjustingQuantum
from .registry import SchedulerContext, register_scheduler
from .representations import SequenceOrientedExpander
from .scheduler import DEFAULT_PER_VERTEX_COST, SearchScheduler


class DCOLS(SearchScheduler):
    """Sequence-oriented dynamic scheduler under RT-SADS's quantum regime.

    Parameters
    ----------
    comm, evaluator, quantum_policy, per_vertex_cost:
        As in :class:`repro.core.rtsads.RTSADS` — both algorithms receive
        identical time quanta and per-vertex costs, per Section 5.2.
    beam_width:
        Tasks probed per processor level, in EDF order.  Defaults to the
        machine's processor count so each D-COLS expansion evaluates exactly
        as many candidates as an RT-SADS expansion does.
    rotate_start:
        Whether the round-robin starting processor advances each phase.
        Defaults to False — the literal Figure-1 tree, whose first level
        always considers the same processor; this is the configuration whose
        idle-processor pathology the paper analyses.  Enabling rotation is a
        strictly friendlier variant (exercised by the ablations).
    """

    def __init__(
        self,
        comm: CommunicationModel,
        evaluator: Optional[VertexEvaluator] = None,
        quantum_policy: Optional[QuantumPolicy] = None,
        per_vertex_cost: float = DEFAULT_PER_VERTEX_COST,
        beam_width: Optional[int] = None,
        rotate_start: bool = False,
        max_candidates: Optional[int] = 100_000,
        instrumentation: Optional["Instrumentation"] = None,
        phase_runner=None,
        kernel=None,
    ) -> None:
        def factory(phase_index: int) -> SequenceOrientedExpander:
            start = phase_index if rotate_start else 0
            return SequenceOrientedExpander(
                beam_width=beam_width, start_processor=start
            )

        super().__init__(
            comm=comm,
            expander_factory=factory,
            evaluator=evaluator or LoadBalancingEvaluator(),
            quantum_policy=quantum_policy or SelfAdjustingQuantum(),
            per_vertex_cost=per_vertex_cost,
            max_candidates=max_candidates,
            name="D-COLS",
            instrumentation=instrumentation,
            phase_runner=phase_runner,
            kernel=kernel,
        )
        self.beam_width = beam_width
        self.rotate_start = rotate_start


def _build_dcols(context: "SchedulerContext") -> DCOLS:
    return DCOLS(
        comm=context.comm,
        evaluator=context.evaluator,
        quantum_policy=context.quantum_policy,
        per_vertex_cost=context.per_vertex_cost,
        kernel=context.kernel,
    )


register_scheduler("dcols", _build_dcols)
