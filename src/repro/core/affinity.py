"""Communication-cost models (``c_ij``) and affinity helpers.

Section 2 of the paper: ``c_ij`` is zero if ``T_i`` has affinity with ``P_j``
(its referenced data resides in ``P_j``'s local memory) and a constant ``C``
otherwise, justified by cut-through (wormhole) routing making communication
cost independent of distance.  We implement that model
(:class:`UniformCommunicationModel`) plus a distance-based store-and-forward
model (:class:`DistanceCommunicationModel`) used only as an ablation.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from dataclasses import replace
from typing import Iterable, Sequence

from .task import Task


class CommunicationModel(ABC):
    """Maps a (task, processor) pair to a communication delay ``c_ij``."""

    @abstractmethod
    def cost(self, task: Task, processor: int) -> float:
        """Communication delay incurred if ``task`` executes on ``processor``."""

    def cost_row(self, task: Task, num_processors: int) -> tuple:
        """``(cost(task, 0), ..., cost(task, m-1))`` in one call.

        The search's per-phase communication cache
        (:meth:`repro.core.search.PhaseContext.comm_row`) fills rows through
        this hook so models can produce a whole row cheaper than ``m``
        virtual-dispatch calls.  Overrides must return exactly the values
        :meth:`cost` would.
        """
        cost = self.cost
        return tuple(cost(task, k) for k in range(num_processors))

    def execution_cost(self, task: Task, processor: int) -> float:
        """Total cost ``p_i + c_ij`` of running ``task`` on ``processor``."""
        return task.processing_time + self.cost(task, processor)

    def cheapest_cost(self, task: Task, processors: Iterable[int]) -> float:
        """Minimum execution cost of ``task`` over ``processors``."""
        return min(self.execution_cost(task, p) for p in processors)


class UniformCommunicationModel(CommunicationModel):
    """The paper's wormhole-routing model: 0 if affine, else constant ``C``."""

    def __init__(self, remote_cost: float) -> None:
        if remote_cost < 0:
            raise ValueError(f"remote_cost must be non-negative, got {remote_cost}")
        self.remote_cost = remote_cost

    def cost(self, task: Task, processor: int) -> float:
        return 0.0 if task.has_affinity(processor) else self.remote_cost

    def cost_row(self, task: Task, num_processors: int) -> tuple:
        affinity = task.affinity
        remote = self.remote_cost
        return tuple(
            0.0 if k in affinity else remote for k in range(num_processors)
        )

    def __repr__(self) -> str:
        return f"UniformCommunicationModel(C={self.remote_cost})"


class ZeroCommunicationModel(CommunicationModel):
    """Shared-memory idealization: communication is free everywhere.

    Useful as the R=100% limit and for isolating sequencing effects in tests.
    """

    def cost(self, task: Task, processor: int) -> float:
        return 0.0

    def cost_row(self, task: Task, num_processors: int) -> tuple:
        return (0.0,) * num_processors

    def __repr__(self) -> str:
        return "ZeroCommunicationModel()"


class DistanceCommunicationModel(CommunicationModel):
    """Store-and-forward ablation: cost grows with mesh distance.

    The paper argues wormhole routing makes ``c_ij`` distance-independent;
    this model lets benchmarks show what changes if that assumption is
    dropped.  Processors are laid out on a 1-D chain (the Paragon is a 2-D
    mesh, but for the ablation only *some* monotone distance matters); the
    distance of a non-affine processor is measured to the nearest affine one.
    """

    def __init__(self, per_hop_cost: float, num_processors: int) -> None:
        if per_hop_cost < 0:
            raise ValueError(f"per_hop_cost must be non-negative, got {per_hop_cost}")
        if num_processors <= 0:
            raise ValueError(f"num_processors must be positive, got {num_processors}")
        self.per_hop_cost = per_hop_cost
        self.num_processors = num_processors

    def cost(self, task: Task, processor: int) -> float:
        if task.has_affinity(processor) or not task.affinity:
            return 0.0
        hops = min(abs(processor - home) for home in task.affinity)
        return self.per_hop_cost * hops

    def __repr__(self) -> str:
        return (
            f"DistanceCommunicationModel(per_hop={self.per_hop_cost}, "
            f"m={self.num_processors})"
        )


def random_affinity(
    num_processors: int,
    affinity_probability: float,
    rng: random.Random,
) -> frozenset:
    """Draw a random affinity set with per-processor probability.

    The paper defines the *degree of affinity* as the probability that a task
    has affinity with a given processor.  At least one processor is always
    affine (a task's data must live somewhere), chosen uniformly when the
    Bernoulli draws all fail.
    """
    if not 0.0 <= affinity_probability <= 1.0:
        raise ValueError(
            f"affinity_probability must be in [0, 1], got {affinity_probability}"
        )
    if num_processors <= 0:
        raise ValueError(f"num_processors must be positive, got {num_processors}")
    members = [
        p for p in range(num_processors) if rng.random() < affinity_probability
    ]
    if not members:
        members = [rng.randrange(num_processors)]
    return frozenset(members)


def project_tasks(
    tasks: Iterable[Task], workers: Sequence[int]
) -> list[Task]:
    """Re-express global affinities against an ordered worker subset.

    ``workers`` lists global worker ids in slot order; each task's
    affinity is rewritten to the *positions* of its affine workers within
    that list.  Workers missing from the list simply drop out of the
    affinity set (their data is unreachable from this view), which is
    exactly the cluster master's alive-set remap and the sharded
    runtime's domain projection — both are the same renaming.
    """
    positions = {worker: slot for slot, worker in enumerate(workers)}
    projected = []
    for task in tasks:
        local = frozenset(
            positions[w] for w in task.affinity if w in positions
        )
        projected.append(
            task if local == task.affinity else replace(task, affinity=local)
        )
    return projected


def affinity_degree(tasks: Iterable[Task], num_processors: int) -> float:
    """Empirical affinity degree of a workload: mean |affinity| / m."""
    tasks = list(tasks)
    if not tasks or num_processors <= 0:
        return 0.0
    return sum(len(t.affinity) for t in tasks) / (len(tasks) * num_processors)
