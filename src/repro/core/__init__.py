"""Core scheduling library: the paper's primary contribution.

Public surface:

* Task model: :class:`Task`, :class:`TaskSet`
* Communication models: :class:`UniformCommunicationModel` and friends
* Schedules: :class:`Schedule`, :class:`ScheduleEntry`
* Quantum policies: :class:`SelfAdjustingQuantum` (paper Figure 3) et al.
* Search representations: assignment-oriented vs sequence-oriented
* Schedulers: :class:`RTSADS`, :class:`DCOLS`, and the greedy baselines
"""

from .affinity import (
    CommunicationModel,
    DistanceCommunicationModel,
    UniformCommunicationModel,
    ZeroCommunicationModel,
    affinity_degree,
    random_affinity,
)
from .baselines import GreedyEDFScheduler, MyopicScheduler, RandomScheduler
from .batch import Batch
from .cost import (
    EarliestFinishEvaluator,
    FifoEvaluator,
    LoadBalancingEvaluator,
    MinSlackEvaluator,
    VertexEvaluator,
    get_evaluator,
)
from .dcols import DCOLS
from .feasibility import (
    is_feasible_against_bound,
    is_feasible_assignment,
    phase_end_bound,
    projected_offsets,
    remaining_quantum,
    schedule_is_deadline_safe,
)
from .kernels import (
    DEFAULT_KERNEL,
    KERNEL_NAMES,
    ScalarKernel,
    SearchKernel,
    get_kernel,
    kernel_available,
    numpy_available,
    register_kernel,
    registered_kernels,
    resolve_kernel,
)
from .phase import MIN_PHASE_TIME, PhaseResult, run_phase
from .reference import reference_dcols, reference_rtsads
from .registry import (
    SCHEDULER_NAMES,
    SchedulerContext,
    get_scheduler_builder,
    make_scheduler,
    register_scheduler,
    registered_names,
)
from .quantum import (
    FixedQuantum,
    LoadOnlyQuantum,
    QuantumPolicy,
    SelfAdjustingQuantum,
    SlackOnlyQuantum,
    get_quantum_policy,
    min_load,
    min_slack,
)
from .representations import (
    AssignmentOrientedExpander,
    SequenceOrientedExpander,
    get_expander,
)
from .rtsads import RTSADS
from .schedule import Schedule, ScheduleEntry
from .scheduler import DEFAULT_PER_VERTEX_COST, Scheduler, SearchScheduler
from .search import (
    CandidateList,
    Expander,
    Expansion,
    PhaseContext,
    SearchBudget,
    SearchOutcome,
    SearchStats,
    Vertex,
    VirtualTimeBudget,
    WallClockBudget,
    make_child,
    make_root,
    run_search,
)
from .task import Task, TaskSet, TaskValidationError, make_task

__all__ = [
    "AssignmentOrientedExpander",
    "Batch",
    "CandidateList",
    "CommunicationModel",
    "DCOLS",
    "DEFAULT_PER_VERTEX_COST",
    "DistanceCommunicationModel",
    "EarliestFinishEvaluator",
    "Expander",
    "Expansion",
    "DEFAULT_KERNEL",
    "FifoEvaluator",
    "FixedQuantum",
    "GreedyEDFScheduler",
    "KERNEL_NAMES",
    "LoadBalancingEvaluator",
    "LoadOnlyQuantum",
    "MIN_PHASE_TIME",
    "MinSlackEvaluator",
    "MyopicScheduler",
    "PhaseContext",
    "PhaseResult",
    "QuantumPolicy",
    "RandomScheduler",
    "SCHEDULER_NAMES",
    "RTSADS",
    "Schedule",
    "ScheduleEntry",
    "Scheduler",
    "ScalarKernel",
    "SearchBudget",
    "SearchKernel",
    "SearchOutcome",
    "SearchScheduler",
    "SearchStats",
    "SchedulerContext",
    "SelfAdjustingQuantum",
    "SequenceOrientedExpander",
    "SlackOnlyQuantum",
    "Task",
    "TaskSet",
    "TaskValidationError",
    "UniformCommunicationModel",
    "Vertex",
    "VertexEvaluator",
    "VirtualTimeBudget",
    "WallClockBudget",
    "ZeroCommunicationModel",
    "affinity_degree",
    "get_evaluator",
    "get_expander",
    "get_quantum_policy",
    "get_scheduler_builder",
    "is_feasible_against_bound",
    "is_feasible_assignment",
    "make_child",
    "make_root",
    "make_scheduler",
    "make_task",
    "min_load",
    "min_slack",
    "phase_end_bound",
    "projected_offsets",
    "random_affinity",
    "register_scheduler",
    "registered_names",
    "registered_kernels",
    "register_kernel",
    "resolve_kernel",
    "get_kernel",
    "kernel_available",
    "numpy_available",
    "reference_dcols",
    "reference_rtsads",
    "remaining_quantum",
    "run_phase",
    "run_search",
    "schedule_is_deadline_safe",
]
