"""Search-space machinery shared by both scheduling representations.

Scheduling is an incremental search for a feasible schedule in a tree
``G(V, E)`` whose vertices are task-to-processor assignments (paper Section
3).  This module provides the pieces that are independent of the search
*representation*:

* :class:`Vertex` — a generated vertex: one assignment plus the persistent
  state (per-processor completion offsets, scheduled-task bitmask) needed to
  extend or evaluate the partial schedule it terminates.
* :class:`CandidateList` — the CL of the paper: feasible candidates awaiting
  expansion, best-first within a block, depth-first across blocks.
* :class:`SearchBudget` and its virtual-time / wall-clock implementations —
  the mechanism by which the quantum ``Q_s(j)`` bounds a phase.
* :func:`run_search` — the depth-first driver: expand the current vertex,
  keep feasible successors, backtrack on failure, stop at a leaf, a dead
  end, or quantum exhaustion, and return the best feasible partial schedule
  found.
"""

from __future__ import annotations

import time
from abc import ABC, abstractmethod
from collections import deque
from dataclasses import dataclass
from heapq import heapify, heappop
from typing import TYPE_CHECKING, Iterable, List, Optional, Sequence, Tuple

from .affinity import CommunicationModel
from .feasibility import EPSILON, is_feasible_against_bound
from .schedule import Schedule, ScheduleEntry
from .task import Task

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .cost import VertexEvaluator


class Vertex:
    """One generated vertex of the task-space tree ``G``.

    A vertex represents the assignment of ``ctx.tasks[batch_index]`` to
    ``processor``; the path from the root to the vertex is the partial
    schedule (paper Section 3).  State is persistent: ``proc_offsets`` and
    ``scheduled_mask`` are immutable snapshots, so backtracking to any vertex
    in the CL needs no undo work.

    ``proc_offsets`` is materialized lazily: a candidate only differs from
    its parent in one slot, and most generated candidates are never expanded
    (they wait in the CL, are backtracked past, or dropped), so building the
    full per-processor tuple at generation time is the single largest cost
    of the search inner loop.  Anything a candidate *is* asked for before
    expansion — its evaluator value via ``max_offset``/``scheduled_end``,
    its feasibility, its schedule path — is available without the tuple.
    """

    __slots__ = (
        "parent",
        "batch_index",
        "processor",
        "depth",
        "scheduled_mask",
        "_proc_offsets",
        "scheduled_end",
        "communication_cost",
        "value",
        "max_offset",
    )

    def __init__(
        self,
        parent: Optional["Vertex"],
        batch_index: int,
        processor: int,
        depth: int,
        scheduled_mask: int,
        proc_offsets: Optional[tuple],
        scheduled_end: float,
        communication_cost: float,
        value: float = 0.0,
        max_offset: Optional[float] = None,
    ) -> None:
        self.parent = parent
        self.batch_index = batch_index
        self.processor = processor
        self.depth = depth
        self.scheduled_mask = scheduled_mask
        self._proc_offsets = proc_offsets
        self.scheduled_end = scheduled_end
        self.communication_cost = communication_cost
        self.value = value
        # ``max(proc_offsets)`` maintained incrementally: extending a path
        # only ever raises one processor's offset, so the child's maximum is
        # max(parent max, new offset) — the O(1) form of the paper's
        # ``CE_i = max_k ce_k`` that the load-balancing evaluator reads.
        if max_offset is None:
            if proc_offsets is None:
                raise ValueError(
                    "a vertex needs either explicit proc_offsets or an "
                    "explicit max_offset"
                )
            max_offset = max(proc_offsets) if proc_offsets else 0.0
        self.max_offset = max_offset

    @property
    def proc_offsets(self) -> tuple:
        """Per-processor completion offsets, built on first use.

        Expansion always materializes the parent first (the expander reads
        ``vertex.proc_offsets`` before generating children), so the implicit
        recursion through ``parent.proc_offsets`` is at most one level deep
        in practice.
        """
        offsets = self._proc_offsets
        if offsets is None:
            parent_offsets = self.parent.proc_offsets
            processor = self.processor
            offsets = (
                parent_offsets[:processor]
                + (self.scheduled_end,)
                + parent_offsets[processor + 1 :]
            )
            self._proc_offsets = offsets
        return offsets

    def is_root(self) -> bool:
        """Whether this is the empty-schedule root (no assignment)."""
        return self.parent is None

    def path(self) -> List["Vertex"]:
        """Vertices from the first assignment to this one (root excluded)."""
        vertices: List[Vertex] = []
        node: Optional[Vertex] = self
        while node is not None and not node.is_root():
            vertices.append(node)
            node = node.parent
        vertices.reverse()
        return vertices

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        """Compact ``T[i]->Pk`` rendering for debugging and logs."""
        if self.is_root():
            return "Vertex(root)"
        return (
            f"Vertex(T[{self.batch_index}]->P{self.processor}, "
            f"depth={self.depth}, se={self.scheduled_end:.3f})"
        )


def make_root(initial_offsets: Sequence[float]) -> Vertex:
    """Root vertex: the empty schedule on top of projected initial loads."""
    return Vertex(
        parent=None,
        batch_index=-1,
        processor=-1,
        depth=0,
        scheduled_mask=0,
        proc_offsets=tuple(initial_offsets),
        scheduled_end=0.0,
        communication_cost=0.0,
    )


def make_child(
    parent: Vertex,
    batch_index: int,
    processor: int,
    total_cost: float,
    communication_cost: float,
) -> Vertex:
    """Extend ``parent`` by one assignment, producing the successor vertex.

    The child's offset tuple is *not* built here — see
    :attr:`Vertex.proc_offsets` — only the two scalars every candidate is
    actually asked for: its own scheduled end and the incrementally
    maintained maximum offset.
    """
    scheduled_end = parent.proc_offsets[processor] + total_cost
    parent_max = parent.max_offset
    return Vertex(
        parent,
        batch_index,
        processor,
        parent.depth + 1,
        parent.scheduled_mask | (1 << batch_index),
        None,
        scheduled_end,
        communication_cost,
        0.0,
        parent_max if parent_max >= scheduled_end else scheduled_end,
    )


class PhaseContext:
    """Immutable inputs of one scheduling phase, shared by all vertices."""

    __slots__ = (
        "tasks",
        "num_processors",
        "comm",
        "phase_start",
        "quantum",
        "phase_end_bound",
        "initial_offsets",
        "evaluator",
        "n",
        "_comm_rows",
    )

    def __init__(
        self,
        tasks: Sequence[Task],
        num_processors: int,
        comm: CommunicationModel,
        phase_start: float,
        quantum: float,
        initial_offsets: Sequence[float],
        evaluator: "VertexEvaluator",
    ) -> None:
        if num_processors <= 0:
            raise ValueError("num_processors must be positive")
        if len(initial_offsets) != num_processors:
            raise ValueError(
                f"initial_offsets has {len(initial_offsets)} entries for "
                f"{num_processors} processors"
            )
        if quantum < 0:
            raise ValueError("quantum must be non-negative")
        self.tasks = list(tasks)
        self.num_processors = num_processors
        self.comm = comm
        self.phase_start = phase_start
        self.quantum = quantum
        self.phase_end_bound = phase_start + quantum
        self.initial_offsets = tuple(initial_offsets)
        self.evaluator = evaluator
        self.n = len(self.tasks)
        # Lazily filled cache of per-task communication-cost rows: the costs
        # ``c_lk`` depend only on (task, processor), never on the partial
        # schedule, so one row per task serves every expansion of the phase.
        self._comm_rows: List[Optional[Tuple[tuple, float]]] = [None] * self.n

    def comm_row(self, index: int) -> Tuple[tuple, float]:
        """``(c_lk for every k, min_k c_lk)`` for ``tasks[index]``, cached.

        The row is computed with the phase's communication model on first
        use and reused for the rest of the phase; the attached minimum feeds
        the expander's best-case feasibility pruning.
        """
        cached = self._comm_rows[index]
        if cached is None:
            row = self.comm.cost_row(self.tasks[index], self.num_processors)
            cached = (row, min(row))
            self._comm_rows[index] = cached
        return cached

    def is_feasible(self, task: Task, scheduled_end: float) -> bool:
        """Figure-4 test in constant-bound form (see feasibility module)."""
        return is_feasible_against_bound(task, scheduled_end, self.phase_end_bound)


@dataclass
class SearchStats:
    """Counters describing one phase's search, used by the ablations."""

    vertices_generated: int = 0
    expansions: int = 0
    backtracks: int = 0
    task_probes: int = 0
    #: Candidates generated but rejected by the Figure-4 feasibility test.
    feasibility_rejections: int = 0
    #: Tasks proven infeasible on every processor and pruned from a subtree
    #: (assignment-oriented only; they roll over to the next batch).
    tasks_pruned: int = 0
    #: Tasks removed before the search by the necessary-condition pre-filter
    #: (``t_s + Q_s + p > d``); set by :func:`repro.core.phase.run_phase`.
    prefilter_rejected: int = 0
    dead_end: bool = False
    complete: bool = False
    maximal: bool = False
    max_depth: int = 0
    processors_touched: int = 0

    def merge(self, other: "SearchStats") -> None:
        """Accumulate another phase's counters into this one."""
        self.vertices_generated += other.vertices_generated
        self.expansions += other.expansions
        self.backtracks += other.backtracks
        self.task_probes += other.task_probes
        self.feasibility_rejections += other.feasibility_rejections
        self.tasks_pruned += other.tasks_pruned
        self.prefilter_rejected += other.prefilter_rejected
        self.dead_end = self.dead_end or other.dead_end
        self.complete = self.complete or other.complete
        self.maximal = self.maximal or other.maximal
        self.max_depth = max(self.max_depth, other.max_depth)
        self.processors_touched = max(
            self.processors_touched, other.processors_touched
        )


class CandidateList:
    """The candidate list CL: a depth-first stack of heap-indexed blocks.

    ``push_block`` receives a block of feasible sibling successors (with
    their evaluator values already assigned) and places it on top so the
    best candidate is expanded next; ``pop`` removes the best remaining
    candidate of the top block.  Popping from an empty CL is the paper's
    *dead-end*.  An optional size bound drops the oldest (shallowest)
    candidates, modelling the bounded scheduling memory of a real host
    processor.

    Each block is a lazily consumed binary heap keyed by ``(value, seq)``
    where ``seq`` is a monotone insertion counter, so the pop order is
    exactly the stable best-first order a pre-sorted block would give
    (ties resolve in generation order) while a block that is buried,
    backtracked past, or dropped never pays for a full sort.
    """

    def __init__(self, max_size: Optional[int] = None) -> None:
        if max_size is not None and max_size <= 0:
            raise ValueError("max_size must be positive when given")
        # Oldest block at the left, the active (top) block at the right.
        self._blocks: deque = deque()
        self._size = 0
        self._seq = 0
        self.max_size = max_size
        self.dropped = 0

    def push_block(self, block: Iterable[Vertex]) -> None:
        """Push one sibling block; ordering happens lazily via the heap.

        Candidates are tagged with a global generation sequence so ties in
        value pop in generation order, exactly like the pre-sorted stack
        the reference implementation keeps.  May evict when ``max_size``
        is exceeded (counted in :attr:`dropped`).
        """
        seq = self._seq
        entries = [(vertex.value, seq + i, vertex) for i, vertex in enumerate(block)]
        self._seq = seq + len(entries)
        if not entries:
            return
        heapify(entries)
        self._blocks.append(entries)
        self._size += len(entries)
        if self.max_size is not None and self._size > self.max_size:
            overflow = self._size - self.max_size
            self._drop_oldest(overflow)
            self._size -= overflow
            self.dropped += overflow

    def _drop_oldest(self, overflow: int) -> None:
        """Evict ``overflow`` candidates, worst-of-oldest-block first.

        Mirrors trimming the bottom of the flat stack the CL used to be:
        the oldest block loses its worst-valued members first, and whole
        blocks go once emptied.
        """
        blocks = self._blocks
        while overflow and blocks:
            oldest = blocks[0]
            if len(oldest) <= overflow:
                overflow -= len(oldest)
                blocks.popleft()
            else:
                # An ascending-sorted list is a valid min-heap, so sorting in
                # place both finds the worst entries and preserves heap order.
                oldest.sort()
                del oldest[len(oldest) - overflow :]
                overflow = 0

    def pop(self) -> Optional[Vertex]:
        """Best candidate of the newest block, or None when empty."""
        blocks = self._blocks
        if not blocks:
            return None
        top = blocks[-1]
        vertex = heappop(top)[2]
        if not top:
            blocks.pop()
        self._size -= 1
        return vertex

    def __len__(self) -> int:
        """Total candidates across all blocks."""
        return self._size

    def __bool__(self) -> bool:
        """True while any candidate remains (cheaper than ``len``)."""
        return self._size > 0


class SearchBudget(ABC):
    """Tracks consumption of the scheduling quantum ``Q_s(j)``."""

    @abstractmethod
    def charge(self, vertices: int) -> None:
        """Account for generating and evaluating ``vertices`` candidates."""

    @abstractmethod
    def used(self) -> float:
        """Scheduling time consumed so far, in the budget's time base."""

    @abstractmethod
    def exhausted(self) -> bool:
        """Whether the quantum has been fully consumed."""

    def remaining(self) -> float:
        """Budget left, in the budget's time base (optional protocol)."""
        raise NotImplementedError


class VirtualTimeBudget(SearchBudget):
    """Deterministic budget: each vertex evaluation costs a fixed model time.

    This is the reproduction's substitute for measuring physical scheduling
    time on the Intel Paragon (see DESIGN.md): CPython's per-vertex cost is
    orders of magnitude larger than the 1998 hardware's, so charging a
    modelled cost preserves the paper's overhead dynamics while keeping runs
    deterministic.
    """

    def __init__(self, quantum: float, per_vertex_cost: float) -> None:
        if quantum < 0:
            raise ValueError("quantum must be non-negative")
        if per_vertex_cost <= 0:
            raise ValueError("per_vertex_cost must be positive")
        self.quantum = quantum
        self.per_vertex_cost = per_vertex_cost
        # Vertices are counted as an integer and converted with a single
        # multiplication in :meth:`used`.  Accumulating ``n * cost`` one
        # charge at a time compounds a rounding error per charge, which at a
        # quantum that is an exact multiple of the per-vertex cost could land
        # just below ``quantum - EPSILON`` and admit one extra expansion —
        # the boundary off-by-one the budget tests pin down.
        self._vertices = 0
        self._consumed = 0.0

    def charge(self, vertices: int) -> None:
        """Count candidates; cost is applied once in :meth:`used`."""
        self._vertices += vertices

    def consume(self, amount: float) -> None:
        """Directly consume budget time (e.g. per-phase batch management)."""
        if amount < 0:
            raise ValueError("consumed amount must be non-negative")
        self._consumed += amount

    def used(self) -> float:
        """Virtual quanta consumed: one multiply, no drift per charge."""
        return self._vertices * self.per_vertex_cost + self._consumed

    def exhausted(self) -> bool:
        """Quantum gone, with EPSILON guarding float-boundary admits."""
        return self.used() >= self.quantum - EPSILON

    def remaining(self) -> float:
        """Virtual quanta left before :meth:`exhausted` flips."""
        if self.exhausted():
            return 0.0
        return max(0.0, self.quantum - self.used())


class WallClockBudget(SearchBudget):
    """Budget measured against real elapsed time (the paper's method).

    Used by the scheduling-overhead experiment (E4) to document how an
    interpreter-speed host distorts the timing study; `charge` only counts
    vertices, time flows by itself.

    The clock starts lazily on the first :meth:`used` / :meth:`charge`
    call, not at construction: a budget is typically built alongside the
    phase context, and any setup work between construction and the search
    must not be silently billed against the quantum.
    """

    def __init__(self, quantum_seconds: float) -> None:
        if quantum_seconds < 0:
            raise ValueError("quantum_seconds must be non-negative")
        self.quantum = quantum_seconds
        self._start: Optional[float] = None
        self.vertices_charged = 0

    def _start_clock(self) -> float:
        if self._start is None:
            self._start = time.perf_counter()
        return self._start

    @property
    def started(self) -> bool:
        """Whether any search work has started the clock yet."""
        return self._start is not None

    def charge(self, vertices: int) -> None:
        """Start the clock if needed and count the candidates."""
        self._start_clock()
        self.vertices_charged += vertices

    def used(self) -> float:
        """Wall seconds since the clock started (starts it if needed)."""
        start = self._start_clock()
        return time.perf_counter() - start

    def exhausted(self) -> bool:
        """Whether elapsed wall time has reached the quantum."""
        return self.used() >= self.quantum

    def remaining(self) -> float:
        """Wall seconds left in the quantum."""
        return max(0.0, self.quantum - self.used())


@dataclass
class Expansion:
    """Outcome of expanding one vertex.

    ``exhaustive`` is True only when the expander *proved* that no
    unscheduled task is feasible on any processor below this vertex — i.e.
    the vertex terminates a maximal partial schedule.  Only the
    assignment-oriented representation can ever conclude this, because each
    of its levels examines every processor; a sequence-oriented level that
    fails has only proved infeasibility on its own processor.
    """

    successors: List[Vertex]
    exhaustive: bool = False

    def __bool__(self) -> bool:
        """True when the expansion produced any feasible successor."""
        return bool(self.successors)


class Expander(ABC):
    """A search representation: how a vertex's successors are generated."""

    @abstractmethod
    def successors(
        self, vertex: Vertex, ctx: PhaseContext, budget: SearchBudget,
        stats: SearchStats,
    ) -> Expansion:
        """Generate, test, and evaluate the feasible successors.

        Implementations must ``budget.charge`` every candidate they generate
        (feasible or not), update ``stats`` accordingly, and assign every
        returned successor its ``ctx.evaluator`` value.  Successors are
        returned in generation order; the :class:`CandidateList` orders them
        best-first (ties in generation order) when the block is pushed.
        """

    @property
    def name(self) -> str:
        """Human-readable representation name (class name)."""
        return type(self).__name__


@dataclass
class SearchOutcome:
    """Result of one phase's search."""

    best: Vertex
    stats: SearchStats
    time_used: float
    candidates_dropped: int = 0

    def extract_schedule(self, ctx: PhaseContext) -> Schedule:
        """Materialize the best vertex's path as a :class:`Schedule`."""
        schedule = Schedule()
        for vertex in self.best.path():
            task = ctx.tasks[vertex.batch_index]
            schedule.append(
                ScheduleEntry(
                    task=task,
                    processor=vertex.processor,
                    communication_cost=vertex.communication_cost,
                    scheduled_end=vertex.scheduled_end,
                )
            )
        return schedule


def _is_better(candidate: Vertex, incumbent: Vertex) -> bool:
    """Deeper schedules win; equal depth resolved by evaluator value."""
    if candidate.depth != incumbent.depth:
        return candidate.depth > incumbent.depth
    return candidate.value < incumbent.value


def run_search(
    ctx: PhaseContext,
    expander: Expander,
    budget: SearchBudget,
    max_candidates: Optional[int] = None,
    max_iterations: Optional[int] = None,
) -> SearchOutcome:
    """Depth-first search of one scheduling phase (paper Section 4.1).

    Iterates: pop the best candidate vertex from the CL, stop if it is a
    leaf (complete schedule), otherwise expand it; feasible successors go on
    top of the CL, an empty successor set triggers backtracking.  The loop
    ends at a leaf, at a *maximal* vertex (an exhaustive expansion proved no
    remaining task fits anywhere — the reachable-space leaf), at a dead end
    (empty CL), or when the budget — i.e. the quantum ``Q_s(j)`` — is
    exhausted.  Returns the deepest feasible vertex seen, whose path is a
    feasible (partial) schedule at any interruption point.
    """
    root = make_root(ctx.initial_offsets)
    cl = CandidateList(max_size=max_candidates)
    cl.push_block([root])
    best = root
    stats = SearchStats()
    iterations = 0
    while not budget.exhausted():
        if max_iterations is not None and iterations >= max_iterations:
            break
        iterations += 1
        vertex = cl.pop()
        if vertex is None:
            stats.dead_end = True
            break
        if vertex.depth >= ctx.n:
            best = vertex
            stats.complete = True
            break
        expansion = expander.successors(vertex, ctx, budget, stats)
        stats.expansions += 1
        if not expansion.successors:
            if expansion.exhaustive:
                # Maximal partial schedule: nothing unscheduled fits on any
                # processor below this vertex.  Further sibling exploration
                # could only rearrange, not extend — end the phase so the
                # schedule is delivered early (sigma <= Q_s).
                if _is_better(vertex, best):
                    best = vertex
                stats.maximal = True
                break
            stats.backtracks += 1
            continue
        for succ in expansion.successors:
            if _is_better(succ, best):
                best = succ
        cl.push_block(expansion.successors)
    stats.max_depth = best.depth
    stats.processors_touched = len(
        {v.processor for v in best.path()}
    )
    return SearchOutcome(
        best=best,
        stats=stats,
        time_used=min(budget.used(), ctx.quantum),
        candidates_dropped=cl.dropped,
    )
