"""Search-space machinery shared by both scheduling representations.

Scheduling is an incremental search for a feasible schedule in a tree
``G(V, E)`` whose vertices are task-to-processor assignments (paper Section
3).  This module provides the pieces that are independent of the search
*representation*:

* :class:`Vertex` — a generated vertex: one assignment plus the persistent
  state (per-processor completion offsets, scheduled-task bitmask) needed to
  extend or evaluate the partial schedule it terminates.
* :class:`CandidateList` — the CL of the paper: feasible candidates awaiting
  expansion, best-first within a block, depth-first across blocks.
* :class:`SearchBudget` and its virtual-time / wall-clock implementations —
  the mechanism by which the quantum ``Q_s(j)`` bounds a phase.
* :func:`run_search` — the depth-first driver: expand the current vertex,
  keep feasible successors, backtrack on failure, stop at a leaf, a dead
  end, or quantum exhaustion, and return the best feasible partial schedule
  found.
"""

from __future__ import annotations

import time
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, List, Optional, Sequence

from .affinity import CommunicationModel
from .feasibility import EPSILON, is_feasible_against_bound
from .schedule import Schedule, ScheduleEntry
from .task import Task

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .cost import VertexEvaluator


class Vertex:
    """One generated vertex of the task-space tree ``G``.

    A vertex represents the assignment of ``ctx.tasks[batch_index]`` to
    ``processor``; the path from the root to the vertex is the partial
    schedule (paper Section 3).  State is persistent: ``proc_offsets`` and
    ``scheduled_mask`` are immutable snapshots, so backtracking to any vertex
    in the CL needs no undo work.
    """

    __slots__ = (
        "parent",
        "batch_index",
        "processor",
        "depth",
        "scheduled_mask",
        "proc_offsets",
        "scheduled_end",
        "communication_cost",
        "value",
    )

    def __init__(
        self,
        parent: Optional["Vertex"],
        batch_index: int,
        processor: int,
        depth: int,
        scheduled_mask: int,
        proc_offsets: tuple,
        scheduled_end: float,
        communication_cost: float,
        value: float = 0.0,
    ) -> None:
        self.parent = parent
        self.batch_index = batch_index
        self.processor = processor
        self.depth = depth
        self.scheduled_mask = scheduled_mask
        self.proc_offsets = proc_offsets
        self.scheduled_end = scheduled_end
        self.communication_cost = communication_cost
        self.value = value

    def is_root(self) -> bool:
        return self.parent is None

    def path(self) -> List["Vertex"]:
        """Vertices from the first assignment to this one (root excluded)."""
        vertices: List[Vertex] = []
        node: Optional[Vertex] = self
        while node is not None and not node.is_root():
            vertices.append(node)
            node = node.parent
        vertices.reverse()
        return vertices

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self.is_root():
            return "Vertex(root)"
        return (
            f"Vertex(T[{self.batch_index}]->P{self.processor}, "
            f"depth={self.depth}, se={self.scheduled_end:.3f})"
        )


def make_root(initial_offsets: Sequence[float]) -> Vertex:
    """Root vertex: the empty schedule on top of projected initial loads."""
    return Vertex(
        parent=None,
        batch_index=-1,
        processor=-1,
        depth=0,
        scheduled_mask=0,
        proc_offsets=tuple(initial_offsets),
        scheduled_end=0.0,
        communication_cost=0.0,
    )


def make_child(
    parent: Vertex,
    batch_index: int,
    processor: int,
    total_cost: float,
    communication_cost: float,
) -> Vertex:
    """Extend ``parent`` by one assignment, producing the successor vertex."""
    offsets = list(parent.proc_offsets)
    scheduled_end = offsets[processor] + total_cost
    offsets[processor] = scheduled_end
    return Vertex(
        parent=parent,
        batch_index=batch_index,
        processor=processor,
        depth=parent.depth + 1,
        scheduled_mask=parent.scheduled_mask | (1 << batch_index),
        proc_offsets=tuple(offsets),
        scheduled_end=scheduled_end,
        communication_cost=communication_cost,
    )


class PhaseContext:
    """Immutable inputs of one scheduling phase, shared by all vertices."""

    __slots__ = (
        "tasks",
        "num_processors",
        "comm",
        "phase_start",
        "quantum",
        "phase_end_bound",
        "initial_offsets",
        "evaluator",
        "n",
    )

    def __init__(
        self,
        tasks: Sequence[Task],
        num_processors: int,
        comm: CommunicationModel,
        phase_start: float,
        quantum: float,
        initial_offsets: Sequence[float],
        evaluator: "VertexEvaluator",
    ) -> None:
        if num_processors <= 0:
            raise ValueError("num_processors must be positive")
        if len(initial_offsets) != num_processors:
            raise ValueError(
                f"initial_offsets has {len(initial_offsets)} entries for "
                f"{num_processors} processors"
            )
        if quantum < 0:
            raise ValueError("quantum must be non-negative")
        self.tasks = list(tasks)
        self.num_processors = num_processors
        self.comm = comm
        self.phase_start = phase_start
        self.quantum = quantum
        self.phase_end_bound = phase_start + quantum
        self.initial_offsets = tuple(initial_offsets)
        self.evaluator = evaluator
        self.n = len(self.tasks)

    def is_feasible(self, task: Task, scheduled_end: float) -> bool:
        """Figure-4 test in constant-bound form (see feasibility module)."""
        return is_feasible_against_bound(task, scheduled_end, self.phase_end_bound)


@dataclass
class SearchStats:
    """Counters describing one phase's search, used by the ablations."""

    vertices_generated: int = 0
    expansions: int = 0
    backtracks: int = 0
    task_probes: int = 0
    #: Candidates generated but rejected by the Figure-4 feasibility test.
    feasibility_rejections: int = 0
    #: Tasks proven infeasible on every processor and pruned from a subtree
    #: (assignment-oriented only; they roll over to the next batch).
    tasks_pruned: int = 0
    #: Tasks removed before the search by the necessary-condition pre-filter
    #: (``t_s + Q_s + p > d``); set by :func:`repro.core.phase.run_phase`.
    prefilter_rejected: int = 0
    dead_end: bool = False
    complete: bool = False
    maximal: bool = False
    max_depth: int = 0
    processors_touched: int = 0

    def merge(self, other: "SearchStats") -> None:
        """Accumulate another phase's counters into this one."""
        self.vertices_generated += other.vertices_generated
        self.expansions += other.expansions
        self.backtracks += other.backtracks
        self.task_probes += other.task_probes
        self.feasibility_rejections += other.feasibility_rejections
        self.tasks_pruned += other.tasks_pruned
        self.prefilter_rejected += other.prefilter_rejected
        self.dead_end = self.dead_end or other.dead_end
        self.complete = self.complete or other.complete
        self.maximal = self.maximal or other.maximal
        self.max_depth = max(self.max_depth, other.max_depth)
        self.processors_touched = max(
            self.processors_touched, other.processors_touched
        )


class CandidateList:
    """The candidate list CL: a depth-first stack of sorted sibling blocks.

    ``push_block`` receives a block of feasible successors sorted best-first
    and places it on top so the best candidate is expanded next; ``pop``
    removes the top candidate.  Popping from an empty CL is the paper's
    *dead-end*.  An optional size bound drops the oldest (shallowest)
    candidates, modelling the bounded scheduling memory of a real host
    processor.
    """

    def __init__(self, max_size: Optional[int] = None) -> None:
        if max_size is not None and max_size <= 0:
            raise ValueError("max_size must be positive when given")
        self._stack: List[Vertex] = []
        self.max_size = max_size
        self.dropped = 0

    def push_block(self, block: Iterable[Vertex]) -> None:
        ordered = list(block)
        # Best candidate must pop first, so append the block reversed.
        self._stack.extend(reversed(ordered))
        if self.max_size is not None and len(self._stack) > self.max_size:
            overflow = len(self._stack) - self.max_size
            del self._stack[:overflow]
            self.dropped += overflow

    def pop(self) -> Optional[Vertex]:
        if not self._stack:
            return None
        return self._stack.pop()

    def __len__(self) -> int:
        return len(self._stack)

    def __bool__(self) -> bool:
        return bool(self._stack)


class SearchBudget(ABC):
    """Tracks consumption of the scheduling quantum ``Q_s(j)``."""

    @abstractmethod
    def charge(self, vertices: int) -> None:
        """Account for generating and evaluating ``vertices`` candidates."""

    @abstractmethod
    def used(self) -> float:
        """Scheduling time consumed so far, in the budget's time base."""

    @abstractmethod
    def exhausted(self) -> bool:
        """Whether the quantum has been fully consumed."""

    def remaining(self) -> float:
        raise NotImplementedError


class VirtualTimeBudget(SearchBudget):
    """Deterministic budget: each vertex evaluation costs a fixed model time.

    This is the reproduction's substitute for measuring physical scheduling
    time on the Intel Paragon (see DESIGN.md): CPython's per-vertex cost is
    orders of magnitude larger than the 1998 hardware's, so charging a
    modelled cost preserves the paper's overhead dynamics while keeping runs
    deterministic.
    """

    def __init__(self, quantum: float, per_vertex_cost: float) -> None:
        if quantum < 0:
            raise ValueError("quantum must be non-negative")
        if per_vertex_cost <= 0:
            raise ValueError("per_vertex_cost must be positive")
        self.quantum = quantum
        self.per_vertex_cost = per_vertex_cost
        self._used = 0.0

    def charge(self, vertices: int) -> None:
        self._used += vertices * self.per_vertex_cost

    def consume(self, amount: float) -> None:
        """Directly consume budget time (e.g. per-phase batch management)."""
        if amount < 0:
            raise ValueError("consumed amount must be non-negative")
        self._used += amount

    def used(self) -> float:
        return self._used

    def exhausted(self) -> bool:
        return self._used >= self.quantum - EPSILON

    def remaining(self) -> float:
        return max(0.0, self.quantum - self._used)


class WallClockBudget(SearchBudget):
    """Budget measured against real elapsed time (the paper's method).

    Used by the scheduling-overhead experiment (E4) to document how an
    interpreter-speed host distorts the timing study; `charge` only counts
    vertices, time flows by itself.

    The clock starts lazily on the first :meth:`used` / :meth:`charge`
    call, not at construction: a budget is typically built alongside the
    phase context, and any setup work between construction and the search
    must not be silently billed against the quantum.
    """

    def __init__(self, quantum_seconds: float) -> None:
        if quantum_seconds < 0:
            raise ValueError("quantum_seconds must be non-negative")
        self.quantum = quantum_seconds
        self._start: Optional[float] = None
        self.vertices_charged = 0

    def _start_clock(self) -> float:
        if self._start is None:
            self._start = time.perf_counter()
        return self._start

    @property
    def started(self) -> bool:
        """Whether any search work has started the clock yet."""
        return self._start is not None

    def charge(self, vertices: int) -> None:
        self._start_clock()
        self.vertices_charged += vertices

    def used(self) -> float:
        start = self._start_clock()
        return time.perf_counter() - start

    def exhausted(self) -> bool:
        return self.used() >= self.quantum

    def remaining(self) -> float:
        return max(0.0, self.quantum - self.used())


@dataclass
class Expansion:
    """Outcome of expanding one vertex.

    ``exhaustive`` is True only when the expander *proved* that no
    unscheduled task is feasible on any processor below this vertex — i.e.
    the vertex terminates a maximal partial schedule.  Only the
    assignment-oriented representation can ever conclude this, because each
    of its levels examines every processor; a sequence-oriented level that
    fails has only proved infeasibility on its own processor.
    """

    successors: List[Vertex]
    exhaustive: bool = False

    def __bool__(self) -> bool:
        return bool(self.successors)


class Expander(ABC):
    """A search representation: how a vertex's successors are generated."""

    @abstractmethod
    def successors(
        self, vertex: Vertex, ctx: PhaseContext, budget: SearchBudget,
        stats: SearchStats,
    ) -> Expansion:
        """Generate, test, evaluate and sort the feasible successors.

        Implementations must ``budget.charge`` every candidate they generate
        (feasible or not) and update ``stats`` accordingly, and must return
        successors sorted best-first by ``ctx.evaluator`` values.
        """

    @property
    def name(self) -> str:
        return type(self).__name__


@dataclass
class SearchOutcome:
    """Result of one phase's search."""

    best: Vertex
    stats: SearchStats
    time_used: float
    candidates_dropped: int = 0

    def extract_schedule(self, ctx: PhaseContext) -> Schedule:
        """Materialize the best vertex's path as a :class:`Schedule`."""
        schedule = Schedule()
        for vertex in self.best.path():
            task = ctx.tasks[vertex.batch_index]
            schedule.append(
                ScheduleEntry(
                    task=task,
                    processor=vertex.processor,
                    communication_cost=vertex.communication_cost,
                    scheduled_end=vertex.scheduled_end,
                )
            )
        return schedule


def _is_better(candidate: Vertex, incumbent: Vertex) -> bool:
    """Deeper schedules win; equal depth resolved by evaluator value."""
    if candidate.depth != incumbent.depth:
        return candidate.depth > incumbent.depth
    return candidate.value < incumbent.value


def run_search(
    ctx: PhaseContext,
    expander: Expander,
    budget: SearchBudget,
    max_candidates: Optional[int] = None,
    max_iterations: Optional[int] = None,
) -> SearchOutcome:
    """Depth-first search of one scheduling phase (paper Section 4.1).

    Iterates: pop the best candidate vertex from the CL, stop if it is a
    leaf (complete schedule), otherwise expand it; feasible successors go on
    top of the CL, an empty successor set triggers backtracking.  The loop
    ends at a leaf, at a *maximal* vertex (an exhaustive expansion proved no
    remaining task fits anywhere — the reachable-space leaf), at a dead end
    (empty CL), or when the budget — i.e. the quantum ``Q_s(j)`` — is
    exhausted.  Returns the deepest feasible vertex seen, whose path is a
    feasible (partial) schedule at any interruption point.
    """
    root = make_root(ctx.initial_offsets)
    cl = CandidateList(max_size=max_candidates)
    cl.push_block([root])
    best = root
    stats = SearchStats()
    iterations = 0
    while not budget.exhausted():
        if max_iterations is not None and iterations >= max_iterations:
            break
        iterations += 1
        vertex = cl.pop()
        if vertex is None:
            stats.dead_end = True
            break
        if vertex.depth >= ctx.n:
            best = vertex
            stats.complete = True
            break
        expansion = expander.successors(vertex, ctx, budget, stats)
        stats.expansions += 1
        if not expansion.successors:
            if expansion.exhaustive:
                # Maximal partial schedule: nothing unscheduled fits on any
                # processor below this vertex.  Further sibling exploration
                # could only rearrange, not extend — end the phase so the
                # schedule is delivered early (sigma <= Q_s).
                if _is_better(vertex, best):
                    best = vertex
                stats.maximal = True
                break
            stats.backtracks += 1
            continue
        for succ in expansion.successors:
            if _is_better(succ, best):
                best = succ
        cl.push_block(expansion.successors)
    stats.max_depth = best.depth
    stats.processors_touched = len(
        {v.processor for v in best.path()}
    )
    return SearchOutcome(
        best=best,
        stats=stats,
        time_used=min(budget.used(), ctx.quantum),
        candidates_dropped=cl.dropped,
    )
