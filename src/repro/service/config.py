"""Configuration of the streaming service mode.

A :class:`ServiceConfig` wraps a
:class:`~repro.cluster.config.ClusterConfig` (whose embedded experiment
defines the *template universe* — the deterministically rebuilt
transactions clients may submit — and the initial worker fleet) with the
knobs only a long-lived service has: the admission policy, the backlog
bound, how the run ends (signal, duration, or going idle), and how long a
drain may take.

A :class:`JoinPlan` schedules one elastic worker join mid-run, mirroring
:class:`~repro.cluster.failure.FailurePlan` on the leave side; together
they script the membership churn a service-smoke run exercises.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from ..cluster.config import ClusterConfig
from .admission import ADMISSION_POLICY_NAMES


@dataclass(frozen=True)
class JoinPlan:
    """Start one extra worker ``after_seconds`` into the service run.

    ``worker_index`` may lie beyond the initial fleet (the joiner then
    holds no data residency and adds pure compute capacity) or reuse the
    index of a failed worker (a restart).
    """

    worker_index: int
    after_seconds: float

    def __post_init__(self) -> None:
        if self.worker_index < 0:
            raise ValueError("worker_index must be non-negative")
        if self.after_seconds < 0:
            raise ValueError("after_seconds must be non-negative")

    @classmethod
    def parse(cls, spec: str) -> "JoinPlan":
        """Parse the CLI form ``INDEX@SECONDS`` (e.g. ``3@2.5``)."""
        try:
            index_text, seconds_text = spec.split("@", 1)
            index = int(index_text)
            seconds = float(seconds_text)
        except ValueError:
            raise ValueError(
                f"join spec {spec!r} is not INDEX@SECONDS"
            ) from None
        return cls(worker_index=index, after_seconds=seconds)


@dataclass(frozen=True)
class ServiceConfig:
    """Everything one long-lived scheduler service run needs."""

    cluster: ClusterConfig = field(default_factory=ClusterConfig.smoke)
    #: Key of :data:`~repro.service.admission.ADMISSION_POLICY_NAMES`.
    admission_policy: str = "reject-newest"
    #: Backlog bound in virtual cost units for the capped policies; 0
    #: derives it as ``workers * mean template relative deadline`` — the
    #: work the fleet can clear within one typical deadline horizon.
    max_backlog_units: float = 0.0
    #: Wall seconds a drain may spend letting in-flight work finish before
    #: the remainder is surrendered.
    drain_grace_seconds: float = 5.0
    #: Wall-clock duration cap counted from readiness; 0 = unlimited (the
    #: run then ends on request_stop/SIGTERM or by going idle).
    max_service_seconds: float = 0.0
    #: Stop once at least one client was served and none remain connected,
    #: with no backlog and nothing in flight.  What the in-process load
    #: harness and CI smoke rely on; a real deployment would switch it off.
    stop_when_idle: bool = True

    def __post_init__(self) -> None:
        if self.admission_policy not in ADMISSION_POLICY_NAMES:
            raise ValueError(
                f"admission_policy must be one of {ADMISSION_POLICY_NAMES}, "
                f"got {self.admission_policy!r}"
            )
        if self.max_backlog_units < 0:
            raise ValueError("max_backlog_units must be non-negative")
        if self.drain_grace_seconds <= 0:
            raise ValueError("drain_grace_seconds must be positive")
        if self.max_service_seconds < 0:
            raise ValueError("max_service_seconds must be non-negative")

    def with_policy(self, policy: str) -> "ServiceConfig":
        """A copy with the admission policy replaced."""
        return replace(self, admission_policy=policy)

    def with_cluster(self, cluster: ClusterConfig) -> "ServiceConfig":
        """A copy with the underlying cluster deployment replaced."""
        return replace(self, cluster=cluster)
