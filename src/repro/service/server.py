"""Run one scheduler service end to end: master, fleet, churn, teardown.

:func:`run_service` is the service-mode sibling of
:func:`~repro.cluster.launcher.launch_cluster`.  The differences are
exactly the ones a long-lived service needs:

* the master is a :class:`~repro.service.master.ServiceMaster` (admission,
  streaming clients, drain-on-stop) instead of a batch master;
* the fleet is *elastic*: :class:`~repro.service.config.JoinPlan` entries
  schedule extra workers to join mid-run (new capacity or restarts), and
  the embedded :class:`~repro.cluster.failure.FailurePlan` still scripts
  fail-stops — every spawned process, early or late, is reaped in the
  same ``finally``;
* ``SIGTERM``/``SIGINT`` can be wired to a graceful drain instead of
  killing the process mid-guarantee;
* an optional ``drive_load`` callable runs in a background thread against
  the bound port, which is how the in-process backend and the smoke tests
  close the loop without a second process.
"""

from __future__ import annotations

import signal
import threading
from typing import Callable, List, Optional, Sequence

from ..cluster.launcher import reap_workers, spawn_worker
from ..observability import Instrumentation, get_instrumentation
from ..runtime.report import RunReport
from .config import JoinPlan, ServiceConfig
from .master import ServiceMaster


def run_service(
    service: ServiceConfig,
    instrumentation: Optional[Instrumentation] = None,
    joins: Sequence[JoinPlan] = (),
    install_signal_handlers: bool = False,
    drive_load: Optional[Callable[[str, int], None]] = None,
) -> RunReport:
    """Serve until stop/duration/idle; always reaps every worker.

    ``joins`` schedules elastic mid-run worker joins (seconds measured
    from service start).  ``drive_load`` — if given — is called as
    ``drive_load(host, port)`` in a daemon thread once the master is
    bound; it is how harness runs co-locate the load generator.  With
    ``install_signal_handlers`` (main thread only), SIGTERM and SIGINT
    request a graceful drain instead of terminating the process.
    """
    obs = instrumentation or get_instrumentation()
    master = ServiceMaster(service, instrumentation=obs)
    cluster = service.cluster
    worker_config = cluster.with_port(master.port)
    if obs.enabled and not worker_config.telemetry:
        # Same reasoning as launch_cluster: spawned workers cannot inherit
        # the sink, so the config flag makes them ship events on the wire.
        worker_config = worker_config.with_telemetry(True)
    workers: List = []
    workers_lock = threading.Lock()
    stopping = threading.Event()

    def _join_fleet(plan: JoinPlan) -> None:
        if stopping.is_set():
            return
        with workers_lock:
            workers.append(spawn_worker(worker_config, plan.worker_index))
        obs.logger.info(
            "elastic worker spawned",
            worker=plan.worker_index,
            after=plan.after_seconds,
        )

    timers = [
        threading.Timer(plan.after_seconds, _join_fleet, args=(plan,))
        for plan in joins
    ]
    restored = _install_handlers(master, obs) if install_signal_handlers else []
    load_thread: Optional[threading.Thread] = None
    try:
        with workers_lock:
            for index in range(cluster.num_workers):
                workers.append(spawn_worker(worker_config, index))
        for timer in timers:
            timer.daemon = True
            timer.start()
        if drive_load is not None:
            load_thread = threading.Thread(
                target=drive_load,
                args=("127.0.0.1", master.port),
                name="repro-service-load",
                daemon=True,
            )
            load_thread.start()
        report = master.run()
    finally:
        stopping.set()
        for timer in timers:
            timer.cancel()
        master.close()
        if load_thread is not None:
            # The master is gone, so the client sees ConnectionLost and
            # returns; the join is just letting it notice.
            load_thread.join(timeout=5.0)
        for handler_signal, previous in restored:
            signal.signal(handler_signal, previous)
        with workers_lock:
            reap_workers(workers, obs)
    return report


def _install_handlers(master: ServiceMaster, obs: Instrumentation):
    """Route SIGTERM/SIGINT into a graceful drain; returns the old handlers."""
    if threading.current_thread() is not threading.main_thread():
        obs.logger.warning(
            "signal handlers requested off the main thread; skipping"
        )
        return []

    def _request_drain(signum, _frame) -> None:
        master.request_stop(reason=signal.Signals(signum).name.lower())

    restored = []
    for handler_signal in (signal.SIGTERM, signal.SIGINT):
        restored.append(
            (handler_signal, signal.signal(handler_signal, _request_drain))
        )
    return restored
