"""A streaming client of the scheduler service.

:class:`ServiceClient` wraps one :class:`~repro.cluster.network.
WorkerChannel` connection to a :class:`~repro.service.master.ServiceMaster`
and keeps the submission ledger: every ``SUBMIT`` it sends is tracked until
its ``ACCEPT``/``REJECT`` and — for accepted ones — its terminal
``RESULT`` arrives.  The open-loop load generator
(:mod:`repro.service.load`) composes one of these; nothing here paces
time, so the class is equally usable from tests that want frame-level
control.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..cluster import protocol
from ..cluster.network import ConnectionLost, WorkerChannel


@dataclass
class SubmissionOutcome:
    """Everything the client learned about one submission."""

    request_id: int
    template_id: int
    accepted: Optional[bool] = None  # None until ACCEPT/REJECT arrives
    task_id: Optional[int] = None
    reject_reason: str = ""
    status: str = ""  # terminal RESULT status ('' until it arrives)
    met_deadline: bool = False
    finished_at: float = 0.0

    @property
    def settled(self) -> bool:
        """True once nothing further is owed for this submission."""
        if self.accepted is None:
            return False
        return self.accepted is False or bool(self.status)


class ServiceClient:
    """Submit transactions to a running service and collect outcomes."""

    def __init__(self, channel: WorkerChannel) -> None:
        self._channel = channel
        self._next_request = 0
        #: request_id -> outcome, in submission order (dicts preserve it).
        self.outcomes: Dict[int, SubmissionOutcome] = {}

    @classmethod
    def connect(
        cls, host: str, port: int, timeout: float = 10.0
    ) -> "ServiceClient":
        """Dial a running service master."""
        return cls(WorkerChannel.connect(host, port, timeout=timeout))

    def close(self) -> None:
        self._channel.close()

    # ----- submitting --------------------------------------------------------

    def submit(
        self, template_id: int, relative_deadline: float = 0.0
    ) -> SubmissionOutcome:
        """Stream one SUBMIT; returns its (not yet settled) outcome."""
        import time

        request_id = self._next_request
        self._next_request += 1
        outcome = SubmissionOutcome(
            request_id=request_id, template_id=template_id
        )
        self.outcomes[request_id] = outcome
        self._channel.send(
            protocol.submit(
                request_id,
                template_id,
                relative_deadline=relative_deadline,
                mono=time.monotonic(),
            )
        )
        return outcome

    # ----- receiving ---------------------------------------------------------

    def poll(self, timeout: float) -> List[Dict[str, object]]:
        """Absorb service frames for up to ``timeout`` seconds.

        Updates the ledger and returns the raw messages (tests inspect
        them).  Raises :class:`ConnectionLost` when the service is gone.
        """
        messages = self._channel.poll(timeout)
        for message in messages:
            self._absorb(message)
        return messages

    def _absorb(self, message: Dict[str, object]) -> None:
        kind = message.get("type")
        outcome = self.outcomes.get(int(message.get("request_id", -1)))
        if outcome is None:
            return
        if kind == protocol.ACCEPT:
            outcome.accepted = True
            outcome.task_id = int(message["task_id"])
        elif kind == protocol.REJECT:
            outcome.accepted = False
            outcome.reject_reason = str(message.get("reason", ""))
        elif kind == protocol.RESULT:
            outcome.status = str(message.get("status", ""))
            outcome.met_deadline = bool(message.get("met_deadline", False))
            outcome.finished_at = float(message.get("finished_at", 0.0))

    # ----- ledger views ------------------------------------------------------

    def unsettled(self) -> List[SubmissionOutcome]:
        """Submissions still owed an ACCEPT/REJECT or a RESULT."""
        return [o for o in self.outcomes.values() if not o.settled]

    def drain(self, timeout: float, poll_interval: float = 0.05) -> bool:
        """Poll until every submission settles or ``timeout`` passes.

        Returns True when fully settled.  A lost connection settles
        nothing further and returns False — the caller decides whether
        that is a test failure or an expected teardown.
        """
        import time

        deadline = time.monotonic() + timeout
        while self.unsettled():
            if time.monotonic() >= deadline:
                return False
            try:
                self.poll(poll_interval)
            except ConnectionLost:
                return False
        return True
