"""The long-lived scheduler service: ClusterMaster under open-loop load.

:class:`ServiceMaster` keeps everything that makes the batch master honest
— wall-clock phases, dispatch-time guarantee re-checks, heartbeat failure
detection, telemetry merging — and replaces the closed workload with a
stream: clients ``SUBMIT`` transactions over the wire, the admission layer
(:mod:`~repro.service.admission`) accepts or sheds each one, and every
accepted submission is answered with exactly one terminal ``RESULT``.

**Templates, not payloads.**  The deterministically rebuilt workload tasks
become a *template universe* shared by master and workers through
``(experiment, seed)``.  A ``SUBMIT`` names a template; the master mints a
fresh task id, stamps the arrival at the master-observed virtual now, and
derives the absolute deadline from the submission's relative deadline (or
the template's own laxity).  ``ASSIGN`` carries the template id so workers
execute the right resident transaction for a minted task.

**Result discipline.**  A record leaves :attr:`ClusterMaster.records` the
moment its RESULT is sent; aggregate counters carry the history.  That
bounds the master's memory by work-in-flight, not by service lifetime —
the property that lets the process run indefinitely.

**Termination.**  The run ends by :meth:`request_stop` (SIGTERM), by the
``max_service_seconds`` duration cap, or — for harness runs — by going
idle after serving at least one client.  All three paths drain: admission
flips to rejecting (reason ``draining``), in-flight work gets
``drain_grace_seconds`` to finish, and whatever remains is *surrendered* —
guarantee revoked, RESULT ``surrendered`` sent — so no client is ever left
waiting on a frame that will not come.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Tuple

from ..cluster import protocol
from ..cluster.master import (
    COMPLETED,
    DISPATCHED,
    PENDING,
    ClusterMaster,
    ClusterTimeoutError,
    LiveTaskRecord,
)
from ..cluster.network import CONNECT, DISCONNECT, MESSAGE, NetworkEvent
from ..core.task import Task
from ..observability import Instrumentation
from ..runtime.report import RunReport
from .admission import AdmissionState, QueuedTask, build_policy
from .config import ServiceConfig

#: Service-only terminal states (the batch ones come from the master).
SHED = "shed"
SURRENDERED = "surrendered"


@dataclass
class ServiceTaskRecord(LiveTaskRecord):
    """One accepted submission's lifecycle, routed back to its client."""

    client_conn: int = -1
    request_id: int = -1
    template_id: int = -1
    result_sent: bool = False


class ServiceMaster(ClusterMaster):
    """Accepts submission streams, schedules them, answers every one."""

    def __init__(
        self,
        service: ServiceConfig,
        instrumentation: Optional[Instrumentation] = None,
    ) -> None:
        self.service = service
        super().__init__(service.cluster, instrumentation=instrumentation)
        self.policy = build_policy(service.admission_policy)
        templates = self.templates.values()
        costs = [t.processing_time for t in templates]
        laxities = [t.deadline - t.arrival_time for t in templates]
        self.mean_template_cost = sum(costs) / len(costs)
        mean_laxity = sum(laxities) / len(laxities)
        self.capacity_units = service.max_backlog_units or (
            self.config.num_workers * mean_laxity
        )
        self._next_task_id = max(self.templates) + 1
        # Submission accounting (aggregate; records prune on RESULT).
        self.submitted = 0
        self.accepted = 0
        self.rejected = 0
        self._terminal = {"completed": 0, "hits": 0, "expired": 0, SHED: 0, SURRENDERED: 0}
        self._max_finished_v = 0.0
        # Client connections currently open (conn_id -> submissions seen).
        self._clients: Dict[int, int] = {}
        self._had_client = False
        # SUBMITs landing before the fleet is ready queue here and replay
        # at virtual time zero — nothing is lost to the startup barrier.
        self._pre_start: List[Tuple[int, Dict]] = []
        self._backpressure = False
        self._stop_requested = False
        self._stop_reason = ""
        self._draining = False
        self._drain_reason = ""
        self._drain_deadline_wall = 0.0

    # ----- workload installation (templates, not staged arrivals) -----------

    def _install_workload(self, tasks: Sequence[Task]) -> None:
        """Keep the rebuilt workload as the template universe."""
        self.templates: Dict[int, Task] = {t.task_id: t for t in tasks}
        self.records = {}

    def _template_id(self, task_id: int) -> int:
        record = self.records.get(task_id)
        if isinstance(record, ServiceTaskRecord):
            return record.template_id
        return -1

    # ----- stop / drain ------------------------------------------------------

    def request_stop(self, reason: str = "stop-requested") -> None:
        """Ask the run to drain and exit (signal-handler safe)."""
        self._stop_reason = reason
        self._stop_requested = True

    @property
    def draining(self) -> bool:
        """Whether admission is closed and the run is winding down."""
        return self._draining

    def _stop_due(self, now_wall: float) -> str:
        """The drain reason that applies right now ('' = keep serving)."""
        if self._stop_requested:
            return self._stop_reason or "stop-requested"
        limit = self.service.max_service_seconds
        if limit > 0 and self._t0 is not None and (
            now_wall - self._t0 >= limit
        ):
            return "duration"
        if (
            self.service.stop_when_idle
            and self._had_client
            and not self._clients
            and not self.records
            and not self.driver.has_backlog()
        ):
            return "idle"
        return ""

    def _begin_drain(self, reason: str, now_wall: float) -> None:
        self._draining = True
        self._drain_reason = reason
        self._drain_deadline_wall = now_wall + self.service.drain_grace_seconds
        self.obs.logger.info(
            "service draining",
            reason=reason,
            in_flight=len(self.records),
        )
        if self.obs.enabled:
            self.obs.emit(
                "drain_start",
                reason=reason,
                t=self.vnow(),
                in_flight=len(self.records),
            )

    def _surrender_unfinished(self) -> None:
        """Terminal sweep: every record still open becomes ``surrendered``.

        Pending work is withdrawn from the driver; dispatched work has its
        guarantee revoked (surrendered, not violated — the paper's
        discipline survives shutdown).  Every client gets its RESULT, and
        a few extra poll ticks flush the outboxes before SHUTDOWN.
        """
        now_v = self.vnow()
        leftover = list(self.records.values())
        self.driver.withdraw(
            [r.task.task_id for r in leftover if r.status == PENDING]
        )
        for record in leftover:
            if record.status == DISPATCHED:
                self.driver.revoke(record.task.task_id)
            record.status = SURRENDERED
            if self.obs.enabled:
                self.obs.emit(
                    "task",
                    transition="surrendered",
                    task_id=record.task.task_id,
                    t=now_v,
                    deadline=record.task.deadline,
                    met_deadline=False,
                )
            self._send_result(record, SURRENDERED, now_v)
        if self.obs.enabled:
            self.obs.emit(
                "drain_end",
                reason=self._drain_reason,
                t=now_v,
                surrendered=len(leftover),
            )
        for _ in range(3):
            self.hub.poll(0.02)

    # ----- main loop ---------------------------------------------------------

    def _loop(self) -> None:
        config = self.config
        self._replay_pre_start()
        while True:
            for event in self.hub.poll(config.poll_interval):
                self._handle_event(event)
            now_wall = time.monotonic()
            for worker_id in self.monitor.expired(now_wall):
                self._worker_lost(worker_id, reason="missed heartbeats")
            if now_wall - self._start_wall > config.max_wall_seconds:
                raise ClusterTimeoutError(
                    f"service run exceeded {config.max_wall_seconds}s; "
                    "aborting and shutting the cluster down"
                )
            if not self._draining:
                reason = self._stop_due(now_wall)
                if reason:
                    self._begin_drain(reason, now_wall)
            self._schedule_ready_work()
            if self._draining and (
                self._finished() or time.monotonic() >= self._drain_deadline_wall
            ):
                self._surrender_unfinished()
                return

    def _replay_pre_start(self) -> None:
        """Admit SUBMITs that raced the startup barrier, in arrival order."""
        queued, self._pre_start = self._pre_start, []
        for conn_id, message in queued:
            self._admit_submission(conn_id, message)

    def _handle_event(self, event: NetworkEvent) -> None:
        if event.kind == CONNECT:
            # Tentatively a client; a worker's HELLO reclassifies it.
            self._clients.setdefault(event.conn_id, 0)
            return
        if event.kind == MESSAGE:
            kind = event.message.get("type")
            if kind == protocol.SUBMIT:
                self._on_submit(event.conn_id, event.message)
                return
            if kind == protocol.HELLO:
                self._clients.pop(event.conn_id, None)
        if event.kind == DISCONNECT and event.conn_id in self._clients:
            self._clients.pop(event.conn_id, None)
            self.obs.logger.info("client disconnected", conn=event.conn_id)
            return
        super()._handle_event(event)

    # ----- admission ---------------------------------------------------------

    def _on_submit(self, conn_id: int, message: Dict) -> None:
        if self._t0 is None:
            self._pre_start.append((conn_id, message))
            return
        self._admit_submission(conn_id, message)

    def _admit_submission(self, conn_id: int, message: Dict) -> None:
        self._clients[conn_id] = self._clients.get(conn_id, 0) + 1
        self._had_client = True
        self.submitted += 1
        request_id = int(message["request_id"])
        if self._draining:
            self._reject(conn_id, request_id, "draining")
            return
        template = self.templates.get(int(message["template_id"]))
        if template is None:
            self._reject(conn_id, request_id, "unknown-template")
            return
        now_v = self.vnow()
        relative = float(message.get("relative_deadline") or 0.0)
        if relative <= 0.0:
            relative = template.deadline - template.arrival_time
        task_id = self._next_task_id
        task = replace(
            template,
            task_id=task_id,
            arrival_time=now_v,
            deadline=now_v + relative,
        )
        cost = template.processing_time
        state = self._admission_state(now_v)
        decision = self.policy.decide(task, cost, state)
        for shed_id in decision.shed:
            self._shed_task(shed_id, now_v)
        if not decision.accept:
            self._reject(conn_id, request_id, decision.reason)
            self._note_backpressure(True)
            return
        self._next_task_id += 1
        self.accepted += 1
        record = ServiceTaskRecord(
            task=task,
            client_conn=conn_id,
            request_id=request_id,
            template_id=template.task_id,
        )
        self.records[task_id] = record
        self.driver.admit([task])
        self.hub.send(
            conn_id, protocol.accept(request_id, task_id, task.deadline)
        )
        if self.obs.enabled:
            self.obs.metrics.counter("service_accepted").inc()
            self.obs.emit(
                "task",
                transition="admitted",
                task_id=task_id,
                t=now_v,
                arrival=task.arrival_time,
                deadline=task.deadline,
                template=template.task_id,
                policy=self.policy.name,
            )
        if decision.shed:
            self._note_backpressure(True)
        elif state.backlog_units() + cost < 0.8 * state.capacity_units:
            self._note_backpressure(False)

    def _admission_state(self, now_v: float) -> AdmissionState:
        pending: List[QueuedTask] = []
        outstanding: List[QueuedTask] = []
        for record in self.records.values():
            view = QueuedTask(
                task_id=record.task.task_id,
                cost=record.planned_cost or record.task.processing_time,
                deadline=record.task.deadline,
            )
            if record.status == PENDING:
                pending.append(view)
            elif record.status == DISPATCHED:
                outstanding.append(view)
        return AdmissionState(
            now=now_v,
            workers=len(self._alive_workers()),
            capacity_units=self.capacity_units,
            pending=tuple(pending),
            outstanding=tuple(outstanding),
        )

    def _reject(self, conn_id: int, request_id: int, reason: str) -> None:
        self.rejected += 1
        self.hub.send(
            conn_id, protocol.reject(request_id, reason, self.policy.name)
        )
        if self.obs.enabled:
            self.obs.metrics.counter("service_rejected").inc()
            self.obs.emit(
                "submission_rejected",
                request=request_id,
                t=self.vnow(),
                reason=reason,
                policy=self.policy.name,
            )

    def _shed_task(self, task_id: int, now_v: float) -> None:
        """Withdraw one admitted-but-undispatched task (policy decision)."""
        record = self.records.get(task_id)
        if record is None or record.status != PENDING:
            return
        self.driver.withdraw([task_id])
        record.status = SHED
        if self.obs.enabled:
            self.obs.metrics.counter("service_shed").inc()
            self.obs.emit(
                "task",
                transition="shed",
                task_id=task_id,
                t=now_v,
                deadline=record.task.deadline,
                policy=self.policy.name,
                met_deadline=False,
            )
        self._send_result(record, SHED, now_v)

    def _note_backpressure(self, engaged: bool) -> None:
        """Record open <-> shedding transitions of the admission layer."""
        if engaged == self._backpressure:
            return
        self._backpressure = engaged
        state = "shedding" if engaged else "open"
        self.obs.logger.info("backpressure", state=state)
        if self.obs.enabled:
            self.obs.metrics.counter("service_backpressure_flips").inc()
            self.obs.emit("backpressure", state=state, t=self.vnow())

    # ----- results back to clients -------------------------------------------

    def _send_result(
        self, record: ServiceTaskRecord, status: str, now_v: float
    ) -> None:
        """Send the one terminal RESULT for ``record`` and prune it.

        Pruning is what bounds master memory over an unbounded run; the
        aggregate ``_terminal`` counters keep the history the report
        needs.  A dead client connection just drops the frame — the
        record still settles.
        """
        if record.result_sent:
            return
        record.result_sent = True
        met = record.met_deadline
        finished = record.finished_at if record.finished_at is not None else 0.0
        self.hub.send(
            record.client_conn,
            protocol.result(
                record.request_id,
                record.task.task_id,
                status,
                met,
                finished,
            ),
        )
        self._terminal[status] += 1
        if status == "completed":
            if met:
                self._terminal["hits"] += 1
            self._max_finished_v = max(self._max_finished_v, finished)
        self.records.pop(record.task.task_id, None)

    def _on_task_done(self, message: Dict) -> None:
        super()._on_task_done(message)
        record = self.records.get(int(message["task_id"]))
        if (
            isinstance(record, ServiceTaskRecord)
            and record.status == COMPLETED
        ):
            self._send_result(
                record, "completed", record.finished_at or self.vnow()
            )

    def on_task_expired(self, task: Task, now: float) -> None:
        super().on_task_expired(task, now)
        record = self.records.get(task.task_id)
        if isinstance(record, ServiceTaskRecord):
            self._send_result(record, "expired", now)

    # ----- report ------------------------------------------------------------

    def _build_report(self) -> RunReport:
        terminal = self._terminal
        completed = terminal["completed"]
        hits = terminal["hits"]
        failed = self.rejected + terminal[SHED] + terminal[SURRENDERED]
        makespan = self._max_finished_v or self.vnow()
        wall = (
            time.monotonic() - self._start_wall
            if self._start_wall is not None
            else 0.0
        )
        if self.obs.enabled:
            self.obs.emit(
                "run_end",
                workers=self.config.num_workers,
                tasks=self.submitted,
                deadline_hits=hits,
                phases=len(self.driver.phases),
                makespan=float(makespan),
            )
        return RunReport(
            backend="service",
            scheduler_name=self.scheduler.name,
            num_workers=self.config.num_workers,
            seed=self.config.experiment.base_seed,
            # Compliance is judged against *offered* load: every
            # submission counts, so shedding is paid for in hit_ratio.
            total_tasks=self.submitted,
            guaranteed=self.driver.guaranteed_count,
            completed=completed,
            deadline_hits=hits,
            completed_late=completed - hits,
            expired=terminal["expired"],
            failed=failed,
            guaranteed_violations=self.guaranteed_violations,
            reschedules=self.driver.reschedules,
            workers_lost=self.driver.workers_lost,
            makespan=float(makespan),
            wall_seconds=wall,
            phases=self.driver.phases,
            extras={
                "port": self.port,
                "policy": self.policy.name,
                "submitted": self.submitted,
                "accepted": self.accepted,
                "rejected": self.rejected,
                "shed": terminal[SHED],
                "surrendered": terminal[SURRENDERED],
                "capacity_units": self.capacity_units,
                "distinct_workers": len(self.workers),
                "drain_reason": self._drain_reason,
            },
        )
