"""Admission backpressure and overload-shedding policies for service mode.

The batch experiments never refuse work: every transaction is known up
front and the scheduler's feasibility search decides its fate.  A
long-lived service under open-loop load has no such luxury — arrivals do
not slow down when the fleet saturates, so *something* must shed load, and
the paper's guarantee discipline says it should happen at admission, not
by silent deadline misses deep in the backlog.

Three policies are provided, all deciding from the same
:class:`AdmissionState` snapshot (admitted-but-undispatched work, work in
flight on workers, alive fleet size, and a backlog capacity):

``reject-newest``
    Bound the backlog in work units; reject arrivals that would overflow
    it.  The classic tail-drop queue: simple, fair to the queue, blind to
    deadlines.

``least-slack``
    Same backlog bound, but on overflow the *least-slack* queued work is
    shed to make room — the task most likely to miss anyway pays, whether
    that is the newcomer or something already accepted.

``schedulability``
    No fixed bound; admit exactly when an EDF demand-bound test still
    passes with the newcomer included.  For every queued absolute deadline
    ``d`` at or after the newcomer's, the work due by ``d`` must fit into
    ``workers * (d - now)`` processor-units — the necessary condition for
    EDF feasibility on identical multiprocessors used as an admission gate
    (after Bonifaci & Marchetti-Spaccamela, arXiv:1004.2033, and Singh's
    soft-real-time EDF test, arXiv:1205.0124).

All quantities are virtual cost units; costs are the master's worst-case
processing estimates (communication is placement-dependent and not known
at admission).  Policies are pure and deterministic — same state, same
decision — so service runs stay reproducible cell-by-cell in sweeps.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Dict, List, Tuple, Type

from ..core.task import Task

#: Comparison slop in virtual units (mirrors the core EPSILON).
EPSILON = 1e-9

#: Registry keys accepted by :func:`build_policy` and
#: ``ExperimentConfig.admission_policy``.
ADMISSION_POLICY_NAMES = ("reject-newest", "least-slack", "schedulability")


@dataclass(frozen=True)
class QueuedTask:
    """Admission's view of one accepted, unfinished task."""

    task_id: int
    cost: float
    deadline: float

    def slack(self, now: float) -> float:
        """Time to spare if the task started right now."""
        return self.deadline - now - self.cost


@dataclass(frozen=True)
class AdmissionState:
    """Snapshot the master hands a policy for one SUBMIT decision.

    ``pending`` is admitted-but-undispatched work (sheddable: no guarantee
    was issued yet); ``outstanding`` is dispatched, unfinished work (not
    sheddable: it carries a delivered guarantee).  ``capacity_units`` is
    the backlog bound the capped policies enforce.
    """

    now: float
    workers: int
    capacity_units: float
    pending: Tuple[QueuedTask, ...] = ()
    outstanding: Tuple[QueuedTask, ...] = ()

    def backlog_units(self) -> float:
        """Admitted-but-undispatched work in cost units."""
        return sum(q.cost for q in self.pending)

    def outstanding_units(self) -> float:
        """Dispatched, unfinished work in cost units."""
        return sum(q.cost for q in self.outstanding)


@dataclass(frozen=True)
class Decision:
    """Outcome of one admission decision.

    ``shed`` names already-admitted pending tasks the policy withdraws to
    make room (only ``least-slack`` uses it); the master owes each of them
    a terminal ``RESULT``.
    """

    accept: bool
    reason: str = "admitted"
    shed: Tuple[int, ...] = ()


class AdmissionPolicy(ABC):
    """Decides one SUBMIT at a time from an :class:`AdmissionState`."""

    #: Registry key; echoed on REJECT frames and in run reports.
    name = "abstract"

    @abstractmethod
    def decide(self, task: Task, cost: float, state: AdmissionState) -> Decision:
        """Admit, reject, or shed-and-admit one incoming task."""


class RejectNewestPolicy(AdmissionPolicy):
    """Tail drop: reject arrivals that would overflow the backlog bound."""

    name = "reject-newest"

    def decide(self, task: Task, cost: float, state: AdmissionState) -> Decision:
        if state.backlog_units() + cost > state.capacity_units + EPSILON:
            return Decision(accept=False, reason="backlog-full")
        return Decision(accept=True)


class LeastSlackPolicy(AdmissionPolicy):
    """On overflow, shed whichever queued work has the least slack.

    The newcomer competes with the pending queue on slack (``deadline -
    now - cost``): pending tasks with less slack than the newcomer are
    withdrawn until it fits; if the newcomer itself has the least slack —
    or shedding everything looser still leaves no room — the newcomer is
    rejected and nothing already accepted is disturbed.
    """

    name = "least-slack"

    def decide(self, task: Task, cost: float, state: AdmissionState) -> Decision:
        backlog = state.backlog_units()
        if backlog + cost <= state.capacity_units + EPSILON:
            return Decision(accept=True)
        new_slack = task.deadline - state.now - cost
        # Loosest-first ordering of the pending work the newcomer may evict.
        looser = sorted(
            (q for q in state.pending if q.slack(state.now) < new_slack - EPSILON),
            key=lambda q: (q.slack(state.now), q.task_id),
        )
        shed: List[int] = []
        for queued in looser:
            if backlog + cost <= state.capacity_units + EPSILON:
                break
            backlog -= queued.cost
            shed.append(queued.task_id)
        if backlog + cost > state.capacity_units + EPSILON:
            return Decision(accept=False, reason="least-slack")
        return Decision(accept=True, shed=tuple(shed))


class SchedulabilityPolicy(AdmissionPolicy):
    """EDF demand-bound admission gate (no fixed backlog cap).

    Admit the newcomer exactly when, for every queued absolute deadline
    ``d >= d_new``, the total work due by ``d`` (pending + outstanding +
    the newcomer) fits into ``workers * (d - now)`` processor-units.
    Violating this necessary condition means *some* deadline must be
    missed under any scheduler, so the newcomer is refused before a
    doomed promise is made.
    """

    name = "schedulability"

    def decide(self, task: Task, cost: float, state: AdmissionState) -> Decision:
        if state.workers <= 0:
            return Decision(accept=False, reason="no-capacity")
        queued = list(state.pending) + list(state.outstanding)
        new_deadline = task.deadline
        # Demand only grows at deadlines >= the newcomer's, so earlier
        # deadlines keep whatever feasibility they already had.
        checkpoints = sorted(
            {q.deadline for q in queued if q.deadline >= new_deadline - EPSILON}
            | {new_deadline}
        )
        for deadline in checkpoints:
            demand = cost + sum(
                q.cost for q in queued if q.deadline <= deadline + EPSILON
            )
            supply = state.workers * (deadline - state.now)
            if demand > supply + EPSILON:
                return Decision(accept=False, reason="demand-exceeds-capacity")
        return Decision(accept=True)


_POLICIES: Dict[str, Type[AdmissionPolicy]] = {
    RejectNewestPolicy.name: RejectNewestPolicy,
    LeastSlackPolicy.name: LeastSlackPolicy,
    SchedulabilityPolicy.name: SchedulabilityPolicy,
}


def build_policy(name: str) -> AdmissionPolicy:
    """Instantiate the admission policy registered under ``name``."""
    try:
        cls = _POLICIES[name]
    except KeyError:
        raise ValueError(
            f"unknown admission policy {name!r}; "
            f"expected one of {ADMISSION_POLICY_NAMES}"
        ) from None
    return cls()
