"""Streaming service mode: a long-lived RT-SADS scheduler on the wire.

Where :mod:`repro.cluster` runs one closed batch to completion, this
package keeps the master alive under *open-loop* load: clients stream
``SUBMIT`` frames over the same TCP protocol (v3), the admission layer
applies backpressure and overload shedding
(:mod:`~repro.service.admission`), workers join and leave mid-run, and
every accepted submission is answered with exactly one terminal
``RESULT`` — even through a SIGTERM drain.

Entry points
------------
:func:`run_service`           run one service end to end (master + fleet).
:func:`run_load`              open-loop load generator / client.
:class:`ServiceConfig`        service knobs around a ``ClusterConfig``.
:class:`ServiceMaster`        the long-lived master (a ``ClusterMaster``).
:func:`build_policy`          admission-policy registry.

The CLI surface is ``repro serve`` and ``repro load``.

Only the admission registry is imported eagerly: the experiment-config
layer validates ``admission_policy`` fields against it, so everything
heavier (master, networking, multiprocessing) loads lazily on first
attribute access to keep that import cycle-free.
"""

from __future__ import annotations

from .admission import (
    ADMISSION_POLICY_NAMES,
    AdmissionPolicy,
    AdmissionState,
    Decision,
    QueuedTask,
    build_policy,
)

#: Lazily imported public names -> defining submodule.
_LAZY = {
    "JoinPlan": "config",
    "ServiceConfig": "config",
    "ServiceMaster": "master",
    "ServiceTaskRecord": "master",
    "ServiceClient": "client",
    "LoadReport": "load",
    "LoadSpec": "load",
    "run_load": "load",
    "run_service": "server",
}

__all__ = [
    "ADMISSION_POLICY_NAMES",
    "AdmissionPolicy",
    "AdmissionState",
    "Decision",
    "QueuedTask",
    "build_policy",
    *sorted(_LAZY),
]


def __getattr__(name: str):
    """PEP 562 lazy loader for the heavy service modules."""
    try:
        module_name = _LAZY[name]
    except KeyError:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        ) from None
    import importlib

    module = importlib.import_module(f".{module_name}", __name__)
    value = getattr(module, name)
    globals()[name] = value
    return value
