"""Open-loop load generation against a running scheduler service.

An *open-loop* generator submits on its own clock — arrivals never slow
down because the service is struggling, which is exactly the regime where
admission backpressure matters (a closed loop would self-throttle and hide
overload).  Arrival times come from any registered
:class:`~repro.workload.arrivals.ArrivalProcess`; the mean arrival rate is
calibrated so ``offered_load = 1.0`` offers the fleet exactly the work it
can clear:

    ``rate = offered_load * workers / mean_template_cost``  [tasks/unit]

mirroring the simulator's ``extension_load_sweep`` calibration, so offered
load means the same thing on every backend.  Virtual arrival times map to
the wall through the service's ``seconds_per_unit``.

Templates are the deterministically rebuilt workload transactions (the
generator never ships data, only template ids); the submission order is a
seeded shuffle, so a ``(spec, seed)`` pair replays the identical stream.
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..cluster.config import build_cluster_workload
from ..cluster.network import ConnectionLost
from ..experiments.config import ExperimentConfig
from ..workload.arrivals import ARRIVAL_NAMES, make_arrival
from .client import ServiceClient


@dataclass(frozen=True)
class LoadSpec:
    """One open-loop load run against a service.

    ``experiment`` must match the serve side's (same template universe and
    mean cost — both sides rebuild it from the config); ``submissions``
    defaults to the experiment's transaction count.  ``seconds_per_unit``
    must equal the service's so virtual arrival times land on its wall
    clock at the intended rate.
    """

    experiment: ExperimentConfig
    arrival: str = "poisson"
    offered_load: float = 1.0
    submissions: int = 0
    seed: int = 0
    seconds_per_unit: float = 0.001
    #: Extra wall seconds to wait for straggler RESULTs after the last
    #: submission (on top of the largest relative deadline).
    settle_grace_seconds: float = 5.0
    #: Concurrent client connections.  The arrival stream is generated
    #: once, then dealt round-robin across the clients, so the *union*
    #: of what N clients offer is the same stream one client would have
    #: offered — only the connection fan-in changes.
    clients: int = 1

    def __post_init__(self) -> None:
        if self.arrival not in ARRIVAL_NAMES:
            raise ValueError(
                f"arrival must be one of {ARRIVAL_NAMES}, "
                f"got {self.arrival!r}"
            )
        if self.offered_load <= 0:
            raise ValueError("offered_load must be positive")
        if self.submissions < 0:
            raise ValueError("submissions must be non-negative")
        if self.seconds_per_unit <= 0:
            raise ValueError("seconds_per_unit must be positive")
        if self.clients < 1:
            raise ValueError("clients must be at least 1")


@dataclass
class LoadReport:
    """What one load run observed, from the client's side of the wire."""

    submitted: int = 0
    accepted: int = 0
    rejected: int = 0
    completed: int = 0
    hits: int = 0
    expired: int = 0
    shed: int = 0
    surrendered: int = 0
    unsettled: int = 0
    wall_seconds: float = 0.0
    offered_load: float = 0.0
    arrival: str = ""
    reject_reasons: Dict[str, int] = field(default_factory=dict)

    @property
    def hit_ratio(self) -> float:
        """Deadline compliance against *offered* load (all submissions)."""
        if self.submitted == 0:
            return 0.0
        return self.hits / self.submitted

    def render(self) -> str:
        """Human-readable digest for the ``repro load`` CLI."""
        lines = [
            (
                f"offered load {self.offered_load:.2f} ({self.arrival}): "
                f"{self.submitted} submitted in {self.wall_seconds:.2f}s"
            ),
            (
                f"accepted {self.accepted}, rejected {self.rejected} "
                f"({self._reasons_text()})"
            ),
            (
                f"completed {self.completed} (deadline hits {self.hits}), "
                f"expired {self.expired}, shed {self.shed}, "
                f"surrendered {self.surrendered}, unsettled {self.unsettled}"
            ),
            f"compliance vs offered: {100.0 * self.hit_ratio:.1f}%",
        ]
        return "\n".join(lines)

    def _reasons_text(self) -> str:
        if not self.reject_reasons:
            return "no rejects"
        return ", ".join(
            f"{reason}={count}"
            for reason, count in sorted(self.reject_reasons.items())
        )


def arrival_rate(experiment: ExperimentConfig, offered_load: float) -> float:
    """Mean arrivals per virtual unit offering ``offered_load`` x capacity.

    Uses the analytic mean template cost (key probability mix of probe and
    scan costs) so the serve and load sides agree without building the
    workload twice.
    """
    key_p = (
        experiment.key_probability
        if experiment.key_probability is not None
        else 0.55  # the literal uniform-attribute mix's key share
    )
    mean_cost = key_p * 10.0 + (1.0 - key_p) * experiment.scan_cost
    return offered_load * experiment.num_processors / mean_cost


def run_load(
    host: str,
    port: int,
    spec: LoadSpec,
) -> LoadReport:
    """Drive one open-loop load run; returns the client-side report.

    Blocks for the stream's duration plus a settle window.  Never raises
    on a vanished service mid-run — the report's ``unsettled`` count says
    how much was abandoned, and the caller judges it.

    With ``spec.clients > 1`` the same stream is dealt round-robin
    across that many concurrent connections (one thread each, sharing
    one start instant so absolute submission times are unchanged) and
    the per-client tallies are summed into one report.
    """
    experiment = spec.experiment
    _, tasks, _ = build_cluster_workload(experiment, experiment.base_seed)
    templates = sorted(tasks, key=lambda t: t.task_id)
    submissions = spec.submissions or experiment.num_transactions
    rng = random.Random(spec.seed or experiment.base_seed)
    order: List[int] = [
        templates[i % len(templates)].task_id for i in range(submissions)
    ]
    rng.shuffle(order)
    rate = arrival_rate(experiment, spec.offered_load)
    horizon = submissions / rate
    times = make_arrival(spec.arrival, rate, horizon=horizon).arrival_times(
        submissions, rng
    )
    max_laxity = max(
        (t.deadline - t.arrival_time for t in templates), default=0.0
    )
    stream = list(zip(times, order))
    started = time.monotonic()
    if spec.clients == 1:
        return _run_stream(host, port, spec, stream, started, max_laxity)
    shares = [stream[i :: spec.clients] for i in range(spec.clients)]
    reports: List[Optional[LoadReport]] = [None] * spec.clients
    failures: List[BaseException] = []

    def drive(index: int) -> None:
        try:
            reports[index] = _run_stream(
                host, port, spec, shares[index], started, max_laxity
            )
        except BaseException as error:  # re-raised on the caller's thread
            failures.append(error)

    threads = [
        threading.Thread(
            target=drive, args=(index,), name=f"repro-load-{index}"
        )
        for index in range(spec.clients)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    if failures:
        raise failures[0]
    merged = LoadReport(offered_load=spec.offered_load, arrival=spec.arrival)
    for report in reports:
        if report is None:
            continue
        merged.submitted += report.submitted
        merged.accepted += report.accepted
        merged.rejected += report.rejected
        merged.completed += report.completed
        merged.hits += report.hits
        merged.expired += report.expired
        merged.shed += report.shed
        merged.surrendered += report.surrendered
        merged.unsettled += report.unsettled
        merged.wall_seconds = max(merged.wall_seconds, report.wall_seconds)
        for reason, count in report.reject_reasons.items():
            merged.reject_reasons[reason] = (
                merged.reject_reasons.get(reason, 0) + count
            )
    return merged


def _run_stream(
    host: str,
    port: int,
    spec: LoadSpec,
    stream: List[Tuple[float, int]],
    started: float,
    max_laxity: float,
) -> LoadReport:
    """One connection's share of the run: submit on the clock, then settle."""
    report = LoadReport(
        offered_load=spec.offered_load, arrival=spec.arrival
    )
    client = ServiceClient.connect(host, port)
    lost = False
    try:
        for arrival_v, template_id in stream:
            due = started + arrival_v * spec.seconds_per_unit
            while True:
                now = time.monotonic()
                if now >= due:
                    break
                try:
                    client.poll(min(due - now, 0.05))
                except ConnectionLost:
                    lost = True
                    break
            if lost:
                break
            try:
                client.submit(template_id)
            except ConnectionLost:
                lost = True
                break
        if not lost:
            settle = (
                max_laxity * spec.seconds_per_unit
                + spec.settle_grace_seconds
            )
            client.drain(settle)
    finally:
        report.wall_seconds = time.monotonic() - started
        _tally(client, report)
        client.close()
    return report


def _tally(client: ServiceClient, report: LoadReport) -> None:
    """Fold the client ledger into the report counters."""
    report.submitted = len(client.outcomes)
    for outcome in client.outcomes.values():
        if not outcome.settled:
            report.unsettled += 1
            continue
        if outcome.accepted is False:
            report.rejected += 1
            reason = outcome.reject_reason or "unknown"
            report.reject_reasons[reason] = (
                report.reject_reasons.get(reason, 0) + 1
            )
            continue
        report.accepted += 1
        if outcome.status == "completed":
            report.completed += 1
            if outcome.met_deadline:
                report.hits += 1
        elif outcome.status == "expired":
            report.expired += 1
        elif outcome.status == "shed":
            report.shed += 1
        elif outcome.status == "surrendered":
            report.surrendered += 1
