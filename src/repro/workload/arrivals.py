"""Arrival processes for aperiodic workloads.

The paper's experiments use a bursty arrival: all 1000 transactions reach
the host simultaneously at ``t = 0``.  Poisson and uniform processes are
provided for the open-system extensions and the quantum ablation (arrival
rate is one of the signals the self-adjusting criterion reacts to).
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from typing import List


class ArrivalProcess(ABC):
    """Generates the arrival times of ``n`` tasks."""

    @abstractmethod
    def arrival_times(self, n: int, rng: random.Random) -> List[float]:
        """``n`` non-decreasing, non-negative arrival times."""

    @property
    def name(self) -> str:
        return type(self).__name__


class BurstyArrival(ArrivalProcess):
    """All tasks arrive at once (paper Section 5.1)."""

    def __init__(self, at: float = 0.0) -> None:
        if at < 0:
            raise ValueError("burst time must be non-negative")
        self.at = at

    def arrival_times(self, n: int, rng: random.Random) -> List[float]:
        if n < 0:
            raise ValueError("n must be non-negative")
        return [self.at] * n


class PoissonArrival(ArrivalProcess):
    """Poisson process: exponential inter-arrival gaps at a given rate."""

    def __init__(self, rate: float, start: float = 0.0) -> None:
        if rate <= 0:
            raise ValueError("arrival rate must be positive")
        if start < 0:
            raise ValueError("start must be non-negative")
        self.rate = rate
        self.start = start

    def arrival_times(self, n: int, rng: random.Random) -> List[float]:
        if n < 0:
            raise ValueError("n must be non-negative")
        times: List[float] = []
        now = self.start
        for _ in range(n):
            now += rng.expovariate(self.rate)
            times.append(now)
        return times


class UniformArrival(ArrivalProcess):
    """Arrivals spread uniformly at random over a window, then sorted."""

    def __init__(self, start: float, end: float) -> None:
        if start < 0 or end <= start:
            raise ValueError("need 0 <= start < end")
        self.start = start
        self.end = end

    def arrival_times(self, n: int, rng: random.Random) -> List[float]:
        if n < 0:
            raise ValueError("n must be non-negative")
        return sorted(rng.uniform(self.start, self.end) for _ in range(n))


class BatchedArrival(ArrivalProcess):
    """Several bursts at fixed intervals — a stress case for the quantum.

    Tasks are split as evenly as possible across ``num_batches`` bursts
    spaced ``interval`` apart.
    """

    def __init__(self, num_batches: int, interval: float, start: float = 0.0) -> None:
        if num_batches <= 0:
            raise ValueError("num_batches must be positive")
        if interval <= 0:
            raise ValueError("interval must be positive")
        if start < 0:
            raise ValueError("start must be non-negative")
        self.num_batches = num_batches
        self.interval = interval
        self.start = start

    def arrival_times(self, n: int, rng: random.Random) -> List[float]:
        if n < 0:
            raise ValueError("n must be non-negative")
        times: List[float] = []
        base, extra = divmod(n, self.num_batches)
        for batch in range(self.num_batches):
            count = base + (1 if batch < extra else 0)
            times.extend([self.start + batch * self.interval] * count)
        return times
