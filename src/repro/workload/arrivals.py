"""Arrival processes for aperiodic workloads.

The paper's experiments use a bursty arrival: all 1000 transactions reach
the host simultaneously at ``t = 0``.  Poisson and uniform processes are
provided for the open-system extensions and the quantum ablation (arrival
rate is one of the signals the self-adjusting criterion reacts to).

The heavy-tailed (:class:`ParetoArrival`, :class:`LogNormalArrival`) and
:class:`DiurnalArrival` processes drive the streaming service mode's
open-loop load generator.  All rate-parameterized processes share the same
convention: ``rate`` is the *mean* number of arrivals per virtual time
unit, so swapping the process changes burstiness while holding offered
load constant.

:func:`make_arrival` builds a process from a short name (``"burst"``,
``"poisson"``, ...) so arrival shape can live in an
:class:`~repro.experiments.config.ExperimentConfig` field.
"""

from __future__ import annotations

import math
import random
from abc import ABC, abstractmethod
from typing import List


class ArrivalProcess(ABC):
    """Generates the arrival times of ``n`` tasks."""

    @abstractmethod
    def arrival_times(self, n: int, rng: random.Random) -> List[float]:
        """``n`` non-decreasing, non-negative arrival times."""

    @property
    def name(self) -> str:
        return type(self).__name__


class BurstyArrival(ArrivalProcess):
    """All tasks arrive at once (paper Section 5.1)."""

    def __init__(self, at: float = 0.0) -> None:
        if at < 0:
            raise ValueError("burst time must be non-negative")
        self.at = at

    def arrival_times(self, n: int, rng: random.Random) -> List[float]:
        if n < 0:
            raise ValueError("n must be non-negative")
        return [self.at] * n


class PoissonArrival(ArrivalProcess):
    """Poisson process: exponential inter-arrival gaps at a given rate."""

    def __init__(self, rate: float, start: float = 0.0) -> None:
        if rate <= 0:
            raise ValueError("arrival rate must be positive")
        if start < 0:
            raise ValueError("start must be non-negative")
        self.rate = rate
        self.start = start

    def arrival_times(self, n: int, rng: random.Random) -> List[float]:
        if n < 0:
            raise ValueError("n must be non-negative")
        times: List[float] = []
        now = self.start
        for _ in range(n):
            now += rng.expovariate(self.rate)
            times.append(now)
        return times


class UniformArrival(ArrivalProcess):
    """Arrivals spread uniformly at random over a window, then sorted."""

    def __init__(self, start: float, end: float) -> None:
        if start < 0 or end <= start:
            raise ValueError("need 0 <= start < end")
        self.start = start
        self.end = end

    def arrival_times(self, n: int, rng: random.Random) -> List[float]:
        if n < 0:
            raise ValueError("n must be non-negative")
        return sorted(rng.uniform(self.start, self.end) for _ in range(n))


class BatchedArrival(ArrivalProcess):
    """Several bursts at fixed intervals — a stress case for the quantum.

    Tasks are split as evenly as possible across ``num_batches`` bursts
    spaced ``interval`` apart.
    """

    def __init__(self, num_batches: int, interval: float, start: float = 0.0) -> None:
        if num_batches <= 0:
            raise ValueError("num_batches must be positive")
        if interval <= 0:
            raise ValueError("interval must be positive")
        if start < 0:
            raise ValueError("start must be non-negative")
        self.num_batches = num_batches
        self.interval = interval
        self.start = start

    def arrival_times(self, n: int, rng: random.Random) -> List[float]:
        if n < 0:
            raise ValueError("n must be non-negative")
        times: List[float] = []
        base, extra = divmod(n, self.num_batches)
        for batch in range(self.num_batches):
            count = base + (1 if batch < extra else 0)
            times.extend([self.start + batch * self.interval] * count)
        return times


class ParetoArrival(ArrivalProcess):
    """Heavy-tailed gaps: Lomax (shifted Pareto) inter-arrival times.

    Gaps are drawn as ``scale * (U**(-1/shape) - 1)`` — a Pareto-II
    distribution with mean ``scale / (shape - 1)`` for ``shape > 1``.  The
    scale is derived from ``rate`` so the *mean* arrival rate matches a
    Poisson process of the same rate, but occasional very long gaps are
    followed by tight clumps: the classic self-similar traffic shape that
    stresses admission control far harder than exponential gaps.
    """

    def __init__(self, rate: float, shape: float = 2.5, start: float = 0.0) -> None:
        if rate <= 0:
            raise ValueError("arrival rate must be positive")
        if shape <= 1:
            raise ValueError("shape must exceed 1 so the mean gap is finite")
        if start < 0:
            raise ValueError("start must be non-negative")
        self.rate = rate
        self.shape = shape
        self.start = start
        #: Lomax scale giving mean gap 1/rate: scale = (shape - 1) / rate.
        self.scale = (shape - 1.0) / rate

    def arrival_times(self, n: int, rng: random.Random) -> List[float]:
        if n < 0:
            raise ValueError("n must be non-negative")
        times: List[float] = []
        now = self.start
        for _ in range(n):
            # Inverse-CDF sample of Lomax(shape, scale); 1 - U avoids u == 0.
            u = 1.0 - rng.random()
            now += self.scale * (u ** (-1.0 / self.shape) - 1.0)
            times.append(now)
        return times


class LogNormalArrival(ArrivalProcess):
    """Heavy-tailed gaps: log-normal inter-arrival times.

    ``sigma`` controls burstiness (sigma -> 0 degenerates to a uniform
    cadence); ``mu`` is derived from ``rate`` so the mean gap is exactly
    ``1/rate`` (``mu = ln(1/rate) - sigma**2 / 2``).
    """

    def __init__(self, rate: float, sigma: float = 1.0, start: float = 0.0) -> None:
        if rate <= 0:
            raise ValueError("arrival rate must be positive")
        if sigma <= 0:
            raise ValueError("sigma must be positive")
        if start < 0:
            raise ValueError("start must be non-negative")
        self.rate = rate
        self.sigma = sigma
        self.start = start
        self.mu = math.log(1.0 / rate) - (sigma * sigma) / 2.0

    def arrival_times(self, n: int, rng: random.Random) -> List[float]:
        if n < 0:
            raise ValueError("n must be non-negative")
        times: List[float] = []
        now = self.start
        for _ in range(n):
            now += rng.lognormvariate(self.mu, self.sigma)
            times.append(now)
        return times


class DiurnalArrival(ArrivalProcess):
    """Non-homogeneous Poisson process with a sinusoidal rate curve.

    The instantaneous rate is ``rate * (1 + amplitude * sin(2*pi*t /
    period))`` — a day/night cycle compressed to ``period`` virtual units.
    Sampling uses Lewis & Shedler thinning: candidate gaps are drawn at the
    peak rate ``rate * (1 + amplitude)`` and accepted with probability
    ``rate(t) / peak``, which is exact for any bounded rate curve.
    """

    def __init__(
        self,
        rate: float,
        period: float,
        amplitude: float = 0.8,
        start: float = 0.0,
    ) -> None:
        if rate <= 0:
            raise ValueError("arrival rate must be positive")
        if period <= 0:
            raise ValueError("period must be positive")
        if not 0 <= amplitude < 1:
            raise ValueError("amplitude must be in [0, 1) so the rate stays positive")
        if start < 0:
            raise ValueError("start must be non-negative")
        self.rate = rate
        self.period = period
        self.amplitude = amplitude
        self.start = start

    def rate_at(self, t: float) -> float:
        """Instantaneous arrival rate at virtual time ``t``."""
        return self.rate * (
            1.0 + self.amplitude * math.sin(2.0 * math.pi * t / self.period)
        )

    def arrival_times(self, n: int, rng: random.Random) -> List[float]:
        if n < 0:
            raise ValueError("n must be non-negative")
        peak = self.rate * (1.0 + self.amplitude)
        times: List[float] = []
        now = self.start
        while len(times) < n:
            now += rng.expovariate(peak)
            if rng.random() * peak <= self.rate_at(now):
                times.append(now)
        return times


#: Names accepted by :func:`make_arrival`; referenced by
#: ``ExperimentConfig.arrival`` validation and the ``repro load`` CLI.
ARRIVAL_NAMES = ("burst", "poisson", "uniform", "batched", "pareto", "lognormal", "diurnal")


def make_arrival(name: str, rate: float, horizon: float = 0.0) -> ArrivalProcess:
    """Build an arrival process from a short name at a mean ``rate``.

    ``rate`` is mean arrivals per virtual unit for every process (so the
    offered load is comparable across shapes).  ``horizon`` only matters
    for the shapes that need a window: ``uniform`` spreads arrivals over
    ``[0, horizon]``, ``batched`` spaces 8 bursts across it, and
    ``diurnal`` fits one full day/night cycle into it; when ``horizon`` is
    0 it defaults to the time a rate-``rate`` process needs for ~100
    arrivals.
    """
    if name not in ARRIVAL_NAMES:
        raise ValueError(f"unknown arrival process {name!r}; expected one of {ARRIVAL_NAMES}")
    if rate <= 0:
        raise ValueError("arrival rate must be positive")
    if horizon <= 0:
        horizon = 100.0 / rate
    if name == "burst":
        return BurstyArrival()
    if name == "poisson":
        return PoissonArrival(rate)
    if name == "uniform":
        return UniformArrival(0.0, horizon)
    if name == "batched":
        return BatchedArrival(num_batches=8, interval=horizon / 8.0)
    if name == "pareto":
        return ParetoArrival(rate)
    if name == "lognormal":
        return LogNormalArrival(rate)
    return DiurnalArrival(rate, period=horizon)
