"""Transaction workload generator (paper Section 5.1).

"A transaction contains a uniformly distributed number of given
attribute-values.  The values are picked equiprobably from their respective
domains."  All of one transaction's values come from a single sub-database
(domains are disjoint across sub-databases), chosen uniformly; deadlines
follow the proportional rule ``SF * 10 * Estimated_Cost``.

The paper does not pin down how often the *key* attribute is among the
given values — which controls the indexed-probe vs full-scan mix and hence
the offered load.  By default the key is included whenever the uniformly
drawn attribute subset happens to contain it (probability ``E[u]/A``);
``key_probability`` overrides that with an explicit coin, the calibration
knob the experiment configs use to keep offered load comparable across
scales (see DESIGN.md).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..core.task import Task, TaskSet
from ..database.database import DistributedDatabase
from ..database.transaction import Transaction, UpdateTransaction
from .arrivals import ArrivalProcess, BurstyArrival
from .deadlines import DeadlinePolicy, ProportionalDeadline


@dataclass(frozen=True)
class TransactionWorkloadConfig:
    """Knobs of the transaction generator, with paper defaults."""

    num_transactions: int = 1000
    slack_factor: float = 1.0  # SF in [1, 3]
    min_given_attributes: int = 1
    max_given_attributes: Optional[int] = None  # default: all attributes
    key_probability: Optional[float] = None
    write_fraction: float = 0.0  # paper: read-only, i.e. 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.key_probability is not None and not (
            0.0 <= self.key_probability <= 1.0
        ):
            raise ValueError("key_probability must be in [0, 1]")
        if not 0.0 <= self.write_fraction <= 1.0:
            raise ValueError("write_fraction must be in [0, 1]")
        if self.num_transactions <= 0:
            raise ValueError("num_transactions must be positive")
        if self.slack_factor <= 0:
            raise ValueError("slack_factor must be positive")
        if self.min_given_attributes <= 0:
            raise ValueError("min_given_attributes must be positive")
        if (
            self.max_given_attributes is not None
            and self.max_given_attributes < self.min_given_attributes
        ):
            raise ValueError(
                "max_given_attributes must be >= min_given_attributes"
            )


class TransactionWorkloadGenerator:
    """Draws transactions against a built database and emits scheduler tasks."""

    def __init__(
        self,
        database: DistributedDatabase,
        config: Optional[TransactionWorkloadConfig] = None,
        arrivals: Optional[ArrivalProcess] = None,
        deadlines: Optional[DeadlinePolicy] = None,
    ) -> None:
        self.database = database
        self.config = config or TransactionWorkloadConfig()
        self.arrivals = arrivals or BurstyArrival()
        self.deadlines = deadlines or ProportionalDeadline(
            slack_factor=self.config.slack_factor
        )

    def _draw_transaction(
        self, txn_id: int, arrival_time: float, rng: random.Random
    ) -> Transaction:
        schema = self.database.schema
        subdb = rng.randrange(schema.num_subdatabases)
        max_given = self.config.max_given_attributes or schema.num_attributes
        max_given = min(max_given, schema.num_attributes)
        count = rng.randint(self.config.min_given_attributes, max_given)
        if self.config.key_probability is None:
            attributes = rng.sample(range(schema.num_attributes), count)
        else:
            non_key = [
                a for a in range(schema.num_attributes)
                if a != schema.key_attribute
            ]
            if rng.random() < self.config.key_probability:
                attributes = [schema.key_attribute] + rng.sample(
                    non_key, min(count - 1, len(non_key))
                )
            else:
                attributes = rng.sample(non_key, min(count, len(non_key)))
        predicates = {
            attribute: schema.domain_for(subdb, attribute).sample(rng)
            for attribute in attributes
        }
        # Short-circuit before drawing so pure-read configurations (the
        # paper's) consume an identical RNG stream with or without the
        # write-mix feature compiled in.
        if self.config.write_fraction and rng.random() < self.config.write_fraction:
            # An update rewrites 1-2 attributes of the matched rows with
            # fresh values from the same sub-database's domains.
            count = rng.randint(1, min(2, schema.num_attributes))
            updated = rng.sample(range(schema.num_attributes), count)
            updates = {
                attribute: schema.domain_for(subdb, attribute).sample(rng)
                for attribute in updated
            }
            return UpdateTransaction(
                txn_id=txn_id,
                predicates=predicates,
                arrival_time=arrival_time,
                updates=updates,
            )
        return Transaction(
            txn_id=txn_id, predicates=predicates, arrival_time=arrival_time
        )

    def generate_transactions(self) -> List[Transaction]:
        """The raw transaction stream, in arrival order."""
        rng = random.Random(self.config.seed)
        times = self.arrivals.arrival_times(self.config.num_transactions, rng)
        return [
            self._draw_transaction(txn_id, arrival, rng)
            for txn_id, arrival in enumerate(times)
        ]

    def generate(self) -> Tuple[TaskSet, List[Transaction]]:
        """Tasks (for the scheduler) plus the transactions they wrap."""
        transactions = self.generate_transactions()
        tasks = TaskSet()
        for txn in transactions:
            estimate = self.database.estimate_cost(txn)
            deadline = self.deadlines.deadline(txn.arrival_time, estimate)
            tasks.add(self.database.to_task(txn, deadline))
        return tasks, transactions

    def generate_tasks(self) -> TaskSet:
        """Just the scheduler-facing tasks."""
        tasks, _ = self.generate()
        return tasks
