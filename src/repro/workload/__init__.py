"""Workload generation: arrivals, deadlines, transactions, synthetic tasks."""

from .arrivals import (
    ArrivalProcess,
    BatchedArrival,
    BurstyArrival,
    PoissonArrival,
    UniformArrival,
)
from .deadlines import (
    PAPER_DEADLINE_MULTIPLIER,
    DeadlinePolicy,
    FixedLaxityDeadline,
    ProportionalDeadline,
)
from .synthetic import SyntheticWorkloadConfig, SyntheticWorkloadGenerator
from .transactions import (
    TransactionWorkloadConfig,
    TransactionWorkloadGenerator,
)

__all__ = [
    "ArrivalProcess",
    "BatchedArrival",
    "BurstyArrival",
    "DeadlinePolicy",
    "FixedLaxityDeadline",
    "PAPER_DEADLINE_MULTIPLIER",
    "PoissonArrival",
    "ProportionalDeadline",
    "SyntheticWorkloadConfig",
    "SyntheticWorkloadGenerator",
    "TransactionWorkloadConfig",
    "TransactionWorkloadGenerator",
    "UniformArrival",
]
