"""Workload generation: arrivals, deadlines, transactions, synthetic tasks."""

from .arrivals import (
    ARRIVAL_NAMES,
    ArrivalProcess,
    BatchedArrival,
    BurstyArrival,
    DiurnalArrival,
    LogNormalArrival,
    ParetoArrival,
    PoissonArrival,
    UniformArrival,
    make_arrival,
)
from .deadlines import (
    PAPER_DEADLINE_MULTIPLIER,
    DeadlinePolicy,
    FixedLaxityDeadline,
    ProportionalDeadline,
)
from .synthetic import SyntheticWorkloadConfig, SyntheticWorkloadGenerator
from .transactions import (
    TransactionWorkloadConfig,
    TransactionWorkloadGenerator,
)

__all__ = [
    "ARRIVAL_NAMES",
    "ArrivalProcess",
    "BatchedArrival",
    "BurstyArrival",
    "DeadlinePolicy",
    "DiurnalArrival",
    "LogNormalArrival",
    "ParetoArrival",
    "make_arrival",
    "FixedLaxityDeadline",
    "PAPER_DEADLINE_MULTIPLIER",
    "PoissonArrival",
    "ProportionalDeadline",
    "SyntheticWorkloadConfig",
    "SyntheticWorkloadGenerator",
    "TransactionWorkloadConfig",
    "TransactionWorkloadGenerator",
    "UniformArrival",
]
