"""Deadline assignment (paper Section 5.1).

Deadlines are proportional to the estimated processing time::

    Deadline(q) = SF * 10 * Estimated_Cost(q)

measured from the task's arrival.  ``SF`` (the *slack factor*, called
*laxity* in the figures) ranges from 1 (tight) to 3 (loose).
"""

from __future__ import annotations

from abc import ABC, abstractmethod

#: The fixed multiplier in the paper's deadline formula.
PAPER_DEADLINE_MULTIPLIER = 10.0


class DeadlinePolicy(ABC):
    """Maps (arrival, estimated cost) to an absolute deadline."""

    @abstractmethod
    def deadline(self, arrival_time: float, estimated_cost: float) -> float:
        """Absolute deadline of a task arriving at ``arrival_time``."""

    @property
    def name(self) -> str:
        return type(self).__name__


class ProportionalDeadline(DeadlinePolicy):
    """The paper's rule: ``d = a + SF * 10 * cost``."""

    def __init__(
        self,
        slack_factor: float,
        multiplier: float = PAPER_DEADLINE_MULTIPLIER,
    ) -> None:
        if slack_factor <= 0:
            raise ValueError("slack_factor must be positive")
        if multiplier <= 0:
            raise ValueError("multiplier must be positive")
        self.slack_factor = slack_factor
        self.multiplier = multiplier

    def deadline(self, arrival_time: float, estimated_cost: float) -> float:
        if estimated_cost <= 0:
            raise ValueError("estimated_cost must be positive")
        return arrival_time + self.slack_factor * self.multiplier * estimated_cost


class FixedLaxityDeadline(DeadlinePolicy):
    """Constant absolute laxity on top of the cost: ``d = a + cost + L``.

    Unlike the proportional rule this gives cheap tasks the same waiting
    allowance as expensive ones; used by tests and the quantum ablation.
    """

    def __init__(self, laxity: float) -> None:
        if laxity < 0:
            raise ValueError("laxity must be non-negative")
        self.laxity = laxity

    def deadline(self, arrival_time: float, estimated_cost: float) -> float:
        if estimated_cost <= 0:
            raise ValueError("estimated_cost must be positive")
        return arrival_time + estimated_cost + self.laxity
