"""Synthetic (database-free) task workloads.

For unit tests, property tests, and experiments that probe the scheduler
itself rather than the database application: tasks with configurable
processing-time distributions, affinity probability (the paper's *degree of
affinity*), and laxity.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional

from ..core.affinity import random_affinity
from ..core.task import Task, TaskSet
from .arrivals import ArrivalProcess, BurstyArrival
from .deadlines import DeadlinePolicy, ProportionalDeadline


@dataclass(frozen=True)
class SyntheticWorkloadConfig:
    """Parameters of a synthetic task workload."""

    num_tasks: int = 100
    num_processors: int = 4
    affinity_probability: float = 0.3
    min_processing_time: float = 10.0
    max_processing_time: float = 100.0
    bimodal_fraction: float = 0.0  # fraction of "heavy" tasks
    bimodal_scale: float = 10.0  # heavy tasks are this much longer
    slack_factor: float = 1.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_tasks <= 0:
            raise ValueError("num_tasks must be positive")
        if self.num_processors <= 0:
            raise ValueError("num_processors must be positive")
        if not 0.0 <= self.affinity_probability <= 1.0:
            raise ValueError("affinity_probability must be in [0, 1]")
        if self.min_processing_time <= 0:
            raise ValueError("min_processing_time must be positive")
        if self.max_processing_time < self.min_processing_time:
            raise ValueError("max_processing_time < min_processing_time")
        if not 0.0 <= self.bimodal_fraction <= 1.0:
            raise ValueError("bimodal_fraction must be in [0, 1]")
        if self.bimodal_scale < 1.0:
            raise ValueError("bimodal_scale must be >= 1")
        if self.slack_factor <= 0:
            raise ValueError("slack_factor must be positive")


class SyntheticWorkloadGenerator:
    """Generates plain real-time task sets without a database behind them."""

    def __init__(
        self,
        config: Optional[SyntheticWorkloadConfig] = None,
        arrivals: Optional[ArrivalProcess] = None,
        deadlines: Optional[DeadlinePolicy] = None,
    ) -> None:
        self.config = config or SyntheticWorkloadConfig()
        self.arrivals = arrivals or BurstyArrival()
        self.deadlines = deadlines or ProportionalDeadline(
            slack_factor=self.config.slack_factor
        )

    def _processing_time(self, rng: random.Random) -> float:
        cfg = self.config
        base = rng.uniform(cfg.min_processing_time, cfg.max_processing_time)
        if cfg.bimodal_fraction and rng.random() < cfg.bimodal_fraction:
            return base * cfg.bimodal_scale
        return base

    def generate(self) -> TaskSet:
        cfg = self.config
        rng = random.Random(cfg.seed)
        times = self.arrivals.arrival_times(cfg.num_tasks, rng)
        tasks = TaskSet()
        for task_id, arrival in enumerate(times):
            processing = self._processing_time(rng)
            deadline = self.deadlines.deadline(arrival, processing)
            tasks.add(
                Task(
                    task_id=task_id,
                    processing_time=processing,
                    arrival_time=arrival,
                    deadline=deadline,
                    affinity=random_affinity(
                        cfg.num_processors, cfg.affinity_probability, rng
                    ),
                    tag="synthetic",
                )
            )
        return tasks
