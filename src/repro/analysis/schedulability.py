"""Offline schedulability oracles: what was *achievable* for a workload.

Every experiment in the paper reports a raw compliance percentage with no
notion of how many deadlines an omniscient scheduler could have met.
This module closes that gap with two classic offline tests (in the
spirit of Bonifaci & Marchetti-Spaccamela, arXiv:1004.2033):

* a **necessary** condition — the interval demand bound.  For any
  interval ``[t1, t2]``, the tasks whose whole scheduling windows fit
  inside it (``a_i >= t1`` and ``d_i <= t2``) must execute entirely
  within it, so if their total processing time exceeds ``m * (t2 - t1)``
  the workload is provably infeasible, and the size of the violation
  lower-bounds how many of those tasks *any* schedule — preemptive,
  migratory, clairvoyant — must miss.

* a **sufficient** condition — a constructive witness.  A deterministic
  clairvoyant non-preemptive EDF simulation on ``m`` machines with zero
  communication cost; if the witness meets every deadline the workload
  is provably feasible (the witness *is* a schedule).

* an **exact** decision for small instances — when the two bounds
  disagree and the workload has at most :data:`EXACT_TASK_LIMIT` tasks,
  :func:`exact_feasibility` settles the question by branch and bound
  over dispatch orders (every non-preemptive schedule is represented by
  some order with earliest-free-machine placement), so tiny workloads
  never land in the ``unknown`` band unless the node budget runs out.

Workloads passing none of the tests are ``unknown`` — non-preemptive
multiprocessor feasibility is NP-hard, so a gap is unavoidable at scale.

The oracle deliberately idealizes: zero communication, no scheduling
overhead, full clairvoyance.  Its ``hits_upper_bound`` therefore
dominates every real scheduler on every backend, which is exactly what
makes *regret* (misses the ideal could have avoided) well defined and
what the conformance suite's soundness battery checks.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, Iterable, Sequence, Tuple

EPSILON = 1e-9

#: Verdict labels, in decreasing order of good news.
FEASIBLE = "feasible"
INFEASIBLE = "infeasible"
UNKNOWN = "unknown"
VERDICTS = (FEASIBLE, INFEASIBLE, UNKNOWN)


@dataclass(frozen=True)
class SchedulabilityVerdict:
    """Outcome of the offline oracle for one (workload, m) pair.

    ``hits_upper_bound`` is the oracle's proven ceiling on deadline hits
    (``total_tasks - forced_misses``); ``witness_hits`` is the floor the
    constructive EDF witness actually achieved.  Any real scheduler's
    hits land in ``[0, hits_upper_bound]``.
    """

    verdict: str
    total_tasks: int
    workers: int
    impossible_tasks: int
    forced_misses: int
    hits_upper_bound: int
    witness_hits: int

    def regret(self, deadline_hits: int) -> int:
        """Misses the ideal scheduler provably could have avoided."""
        return max(0, self.hits_upper_bound - deadline_hits)

    def compliance_vs_bound(self, deadline_hits: int) -> float:
        """Fraction of the proven ceiling a run actually achieved."""
        if self.hits_upper_bound <= 0:
            return 1.0
        return min(1.0, deadline_hits / self.hits_upper_bound)

    def as_dict(self) -> Dict[str, object]:
        return {
            "verdict": self.verdict,
            "total_tasks": self.total_tasks,
            "workers": self.workers,
            "impossible_tasks": self.impossible_tasks,
            "forced_misses": self.forced_misses,
            "hits_upper_bound": self.hits_upper_bound,
            "witness_hits": self.witness_hits,
        }


def _forced_misses_by_demand(
    tasks: Sequence[Tuple[float, float, float]], workers: int
) -> int:
    """Lower bound on misses forced by the interval demand bound.

    For every candidate interval ``[t1, t2]`` (``t1`` over arrivals,
    ``t2`` over deadlines) the contained demand may exceed the supply
    ``m * (t2 - t1)``; on the most violated interval, the minimum number
    of contained tasks whose removal restores the bound — removing
    largest first — is a sound lower bound on misses.  O(n^2 log n).
    """
    if not tasks:
        return 0
    by_deadline = sorted(tasks, key=lambda t: t[2])  # one sort, reused
    starts = sorted({a for a, _, _ in tasks})
    best = 0
    for t1 in starts:
        # Tasks whose windows start at or after t1, swept in deadline
        # order: each prefix is exactly the contained set of [t1, d].
        demand = 0.0
        sizes = []
        worst = None  # (excess, supply, contained_count)
        for arrival, processing, deadline in by_deadline:
            if arrival < t1 - EPSILON:
                continue
            demand += processing
            sizes.append(processing)
            supply = workers * (deadline - t1)
            excess = demand - supply
            if excess > EPSILON and (worst is None or excess > worst[0]):
                worst = (excess, supply, len(sizes))
        if worst is None:
            continue
        _, supply, count = worst
        # Remove largest contained tasks until the interval fits again.
        removed = 0
        remaining = sum(sizes[:count])
        for size in sorted(sizes[:count], reverse=True):
            if remaining <= supply + EPSILON:
                break
            remaining -= size
            removed += 1
        best = max(best, removed)
    return best


def _witness_hits(
    tasks: Sequence[Tuple[float, float, float]], workers: int
) -> int:
    """Deadline hits achieved by a clairvoyant non-preemptive EDF witness.

    Zero communication, ``m`` identical machines, global EDF order with a
    deterministic tie-break; tasks that can no longer meet their deadline
    are dropped without occupying a machine.  The result is a *valid*
    schedule, so its hit count is a constructive feasibility floor.
    """
    machines = [0.0] * workers
    hits = 0
    # EDF order; ties broken by arrival then size for determinism.
    for arrival, processing, deadline in sorted(
        tasks, key=lambda t: (t[2], t[0], t[1])
    ):
        free = min(range(workers), key=lambda i: (machines[i], i))
        start = max(machines[free], arrival)
        end = start + processing
        if end <= deadline + EPSILON:
            machines[free] = end
            hits += 1
    return hits


#: Largest instance the exact branch-and-bound test attempts.
EXACT_TASK_LIMIT = 12

#: Search-node budget before :func:`exact_feasibility` gives up (None).
EXACT_NODE_LIMIT = 200_000


class _NodeBudgetExhausted(Exception):
    """Internal: the branch-and-bound hit its node limit."""


def exact_feasibility(
    tasks: Sequence[Tuple[float, float, float]],
    workers: int,
    node_limit: int = EXACT_NODE_LIMIT,
) -> "bool | None":
    """Exact non-preemptive feasibility on ``m`` identical machines.

    Branch and bound over *dispatch orders*: any non-preemptive schedule
    can be normalized, without changing which deadlines are met, into
    one where tasks are started in some fixed order and the i-th started
    task takes the earliest-free machine (start ``max(f_min, a_i)``) —
    later-free machines only shrink the availability vector, and
    deliberate idling is expressed by sequencing the waited-for task
    earlier.  Searching all orders with that placement rule is therefore
    complete.

    Pruning: a prefix dies as soon as *any* remaining task can no longer
    meet its deadline even if dispatched immediately (machine free times
    are non-decreasing along a branch); identical remaining triples
    branch once; visited ``(remaining, free-times)`` states memoize.

    Returns True when a schedule meeting every deadline exists, False
    when provably none does, None when ``node_limit`` ran out — the
    caller keeps its ``unknown``.  Exponential in the worst case: callers
    gate on :data:`EXACT_TASK_LIMIT`.
    """
    if workers <= 0:
        raise ValueError("workers must be positive")
    ordered = sorted(tasks, key=lambda t: (t[2], t[0], t[1]))
    n = len(ordered)
    if n == 0:
        return True
    if workers >= n:
        # One machine per task: start each at its arrival.
        return all(a + p <= d + EPSILON for a, p, d in ordered)
    seen = set()
    nodes = 0

    def dfs(remaining: int, frees: Tuple[float, ...]) -> bool:
        nonlocal nodes
        if remaining == 0:
            return True
        nodes += 1
        if nodes > node_limit:
            raise _NodeBudgetExhausted
        key = (remaining, frees)
        if key in seen:
            return False
        seen.add(key)
        f_min = frees[0]
        for index in range(n):
            if remaining >> index & 1:
                a, p, d = ordered[index]
                if max(f_min, a) + p > d + EPSILON:
                    return False  # free times only grow: hopeless
        tried = set()
        for index in range(n):  # EDF-first branch order
            if not (remaining >> index & 1):
                continue
            triple = ordered[index]
            if triple in tried:
                continue  # identical task: identical subtree
            tried.add(triple)
            a, p, _ = triple
            start = max(f_min, a)
            successor = tuple(sorted(frees[1:] + (round(start + p, 9),)))
            if dfs(remaining & ~(1 << index), successor):
                return True
        return False

    try:
        return dfs((1 << n) - 1, (0.0,) * workers)
    except _NodeBudgetExhausted:
        return None


@lru_cache(maxsize=64)
def _analyze(
    tasks: Tuple[Tuple[float, float, float], ...], workers: int
) -> SchedulabilityVerdict:
    total = len(tasks)
    impossible = sum(
        1 for a, p, d in tasks if a + p > d + EPSILON
    )
    possible = tuple(
        (a, p, d) for a, p, d in tasks if a + p <= d + EPSILON
    )
    # Impossible tasks miss in any schedule; the demand bound then forces
    # further misses among the remaining (disjoint) tasks.
    forced = impossible + _forced_misses_by_demand(possible, workers)
    witness = _witness_hits(possible, workers)
    if forced > 0:
        verdict = INFEASIBLE
    elif witness == total:
        verdict = FEASIBLE
    else:
        verdict = UNKNOWN
    if verdict == UNKNOWN and total <= EXACT_TASK_LIMIT:
        # Both bounds were silent and the instance is small: settle it.
        # (forced == 0 here implies impossible == 0, so possible == tasks.)
        exact = exact_feasibility(possible, workers)
        if exact is True:
            verdict = FEASIBLE
        elif exact is False:
            # Provably at least one miss in any non-preemptive schedule.
            verdict = INFEASIBLE
            forced = 1
    return SchedulabilityVerdict(
        verdict=verdict,
        total_tasks=total,
        workers=workers,
        impossible_tasks=impossible,
        forced_misses=forced,
        hits_upper_bound=total - forced,
        witness_hits=witness,
    )


def analyze_tasks(tasks: Iterable, workers: int) -> SchedulabilityVerdict:
    """Run the oracle over task objects (``arrival_time``/``processing_time``/
    ``deadline`` attributes) on ``workers`` identical machines."""
    if workers <= 0:
        raise ValueError("workers must be positive")
    key = tuple(
        sorted(
            (
                float(t.arrival_time),
                float(t.processing_time),
                float(t.deadline),
            )
            for t in tasks
        )
    )
    return _analyze(key, workers)


def analyze_triples(
    triples: Iterable[Tuple[float, float, float]], workers: int
) -> SchedulabilityVerdict:
    """Run the oracle over raw ``(arrival, processing, deadline)`` triples
    — the trace-analysis path, which has no Task objects."""
    if workers <= 0:
        raise ValueError("workers must be positive")
    key = tuple(
        sorted((float(a), float(p), float(d)) for a, p, d in triples)
    )
    return _analyze(key, workers)


def regret_section(
    verdict: SchedulabilityVerdict, deadline_hits: int
) -> Dict[str, object]:
    """The ``regret`` payload attached to run reports and figure exports."""
    section = verdict.as_dict()
    section["deadline_hits"] = deadline_hits
    section["regret_misses"] = verdict.regret(deadline_hits)
    section["compliance_vs_bound"] = verdict.compliance_vs_bound(
        deadline_hits
    )
    return section


def unknown_regret_section(total_tasks: int, workers: int) -> Dict[str, object]:
    """Placeholder for backends the oracle cannot reconstruct offline."""
    return {
        "verdict": UNKNOWN,
        "total_tasks": total_tasks,
        "workers": workers,
        "impossible_tasks": 0,
        "forced_misses": 0,
        "hits_upper_bound": total_tasks,
        "witness_hits": 0,
        "deadline_hits": 0,
        "regret_misses": 0,
        "compliance_vs_bound": 1.0,
    }
