"""Offline analysis of workloads and runs: schedulability, regret.

The oracles here never look at a scheduler — they bound what *any*
scheduler could have achieved for a workload, turning raw compliance
numbers into regret analyses.  See :mod:`repro.analysis.schedulability`.
"""

from .schedulability import (
    EPSILON,
    EXACT_TASK_LIMIT,
    FEASIBLE,
    INFEASIBLE,
    UNKNOWN,
    VERDICTS,
    SchedulabilityVerdict,
    analyze_tasks,
    analyze_triples,
    exact_feasibility,
    regret_section,
    unknown_regret_section,
)

__all__ = [
    "EPSILON",
    "EXACT_TASK_LIMIT",
    "FEASIBLE",
    "INFEASIBLE",
    "UNKNOWN",
    "VERDICTS",
    "SchedulabilityVerdict",
    "analyze_tasks",
    "analyze_triples",
    "exact_feasibility",
    "regret_section",
    "unknown_regret_section",
]
