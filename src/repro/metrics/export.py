"""Machine-readable export of experiment results (CSV and JSON).

The ASCII tables in :mod:`repro.metrics.reporting` are for terminals; this
module serializes the same result objects for plotting pipelines:

* :func:`figure_to_csv` / :func:`figure_to_json` — a
  :class:`~repro.metrics.reporting.FigureData` (one row per x value, one
  column per series).
* :func:`table_to_csv` / :func:`table_to_json` — any headers-plus-rows
  table (the ablation/extension results).
* :func:`report_to_json` / :func:`export_report` — one run's
  :class:`~repro.runtime.report.RunReport`; the schema is identical for
  every execution backend, which the CI backend-matrix job asserts.
* :func:`write_text` — tiny helper writing with a trailing newline.

Only the standard library is used; CSV quoting follows RFC 4180 via the
``csv`` module.
"""

from __future__ import annotations

import csv
import io
import json
from pathlib import Path
from typing import List, Sequence

from .reporting import FigureData


def figure_to_csv(figure: FigureData) -> str:
    """CSV text: header row, then one row per x value."""
    buffer = io.StringIO()
    writer = csv.writer(buffer, lineterminator="\n")
    writer.writerow([figure.x_label] + [s.label for s in figure.series])
    for i, x in enumerate(figure.x_values):
        writer.writerow([x] + [series.values[i] for series in figure.series])
    return buffer.getvalue()


def figure_to_json(figure: FigureData, indent: int = 2) -> str:
    """JSON document carrying the figure's full structure."""
    document = {
        "title": figure.title,
        "x_label": figure.x_label,
        "y_label": figure.y_label,
        "x_values": list(figure.x_values),
        "series": [
            {"label": series.label, "values": list(series.values)}
            for series in figure.series
        ],
        "notes": list(figure.notes),
    }
    return json.dumps(document, indent=indent)


def table_to_csv(headers: Sequence[str], rows: Sequence[Sequence]) -> str:
    """CSV text for a generic headers-plus-rows table."""
    buffer = io.StringIO()
    writer = csv.writer(buffer, lineterminator="\n")
    writer.writerow(list(headers))
    for row in rows:
        writer.writerow(list(row))
    return buffer.getvalue()


def table_to_json(
    headers: Sequence[str],
    rows: Sequence[Sequence],
    title: str = "",
    indent: int = 2,
) -> str:
    """JSON document: list of row objects keyed by header."""
    if any(len(row) != len(headers) for row in rows):
        raise ValueError("every row must have one cell per header")
    document = {
        "title": title,
        "headers": list(headers),
        "rows": [dict(zip(headers, row)) for row in rows],
    }
    return json.dumps(document, indent=indent)


def report_to_json(report, indent: int = 2) -> str:
    """JSON document for one run's report, keys sorted for stable diffs.

    Duck-typed on ``as_dict()`` rather than annotated with
    :class:`~repro.runtime.report.RunReport` so this base-layer module
    keeps importing nothing from the runtime packages.
    """
    return json.dumps(report.as_dict(), indent=indent, sort_keys=True)


def write_text(path: str | Path, text: str) -> Path:
    """Write ``text`` to ``path`` (creating parents), newline-terminated."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    if not text.endswith("\n"):
        text += "\n"
    path.write_text(text)
    return path


def export_figure(figure: FigureData, stem: str | Path) -> List[Path]:
    """Write ``<stem>.csv`` and ``<stem>.json`` for a figure."""
    stem = Path(stem)
    return [
        write_text(stem.with_suffix(".csv"), figure_to_csv(figure)),
        write_text(stem.with_suffix(".json"), figure_to_json(figure)),
    ]


def export_report(report, stem: str | Path) -> Path:
    """Write ``<stem>.json`` for one run's report."""
    stem = Path(stem)
    return write_text(stem.with_suffix(".json"), report_to_json(report))
