"""Regret aggregation: compliance measured against the oracle's ceiling.

One run's ``regret`` section (see
:func:`repro.analysis.schedulability.regret_section`) describes a single
seed; sweeps need the per-cell view — how many repetitions were provably
feasible, how many misses the ideal scheduler would have avoided, and the
mean compliance-vs-bound.  These helpers aggregate the per-run sections
without reaching back into the oracle, so they work identically on live
reports and on cached sweep records.
"""

from __future__ import annotations

from typing import Dict, List, Sequence


def summarize_regret(sections: Sequence[Dict[str, object]]) -> Dict[str, object]:
    """Aggregate per-run regret sections into one per-cell summary.

    Empty or oracle-less inputs produce a zeroed summary with
    ``verdicts == {}`` so exports stay schema-stable.
    """
    populated: List[Dict[str, object]] = [s for s in sections if s]
    verdicts: Dict[str, int] = {}
    for section in populated:
        verdict = str(section.get("verdict", "unknown"))
        verdicts[verdict] = verdicts.get(verdict, 0) + 1
    regret_misses = sum(
        int(s.get("regret_misses", 0)) for s in populated
    )
    feasible = [
        s for s in populated if s.get("verdict") == "feasible"
    ]
    ratios = [
        float(s.get("compliance_vs_bound", 1.0)) for s in populated
    ]
    return {
        "runs": len(populated),
        "verdicts": verdicts,
        "regret_misses": regret_misses,
        "regret_misses_on_feasible": sum(
            int(s.get("regret_misses", 0)) for s in feasible
        ),
        "mean_compliance_vs_bound": (
            sum(ratios) / len(ratios) if ratios else 1.0
        ),
    }
