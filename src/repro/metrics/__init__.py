"""Metrics: deadline compliance, scalability, statistics, reporting."""

from .compliance import (
    ComplianceReport,
    compliance_report,
    hit_ratio_by_tag,
    is_monotone_nondecreasing,
    processor_balance,
    scalability_gain,
)
from .export import (
    export_figure,
    figure_to_csv,
    figure_to_json,
    table_to_csv,
    table_to_json,
    write_text,
)
from .reporting import (
    FigureData,
    Series,
    ascii_chart,
    comparison_summary,
    format_figure,
    format_gantt,
    format_table,
)
from .stats import (
    ConfidenceInterval,
    DifferenceOfMeansResult,
    confidence_interval,
    difference_of_means,
    mean,
    std_dev,
    student_t_cdf,
    student_t_quantile,
    variance,
)

__all__ = [
    "ComplianceReport",
    "ConfidenceInterval",
    "DifferenceOfMeansResult",
    "FigureData",
    "Series",
    "ascii_chart",
    "comparison_summary",
    "compliance_report",
    "confidence_interval",
    "difference_of_means",
    "export_figure",
    "figure_to_csv",
    "figure_to_json",
    "format_figure",
    "format_gantt",
    "format_table",
    "hit_ratio_by_tag",
    "is_monotone_nondecreasing",
    "mean",
    "processor_balance",
    "scalability_gain",
    "std_dev",
    "table_to_csv",
    "table_to_json",
    "student_t_cdf",
    "student_t_quantile",
    "variance",
    "write_text",
]
