"""Statistics for experiment aggregation.

The paper runs each experiment 10 times, plots the means, and reports
"two-tailed difference-of-means tests ... a confidence interval of 99% at a
0.01 significance level".  This module implements exactly that machinery —
means, confidence intervals, and a Welch two-tailed difference-of-means
test — from scratch (no scipy dependency), with the Student-t quantiles
needed for small samples.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence


def mean(values: Sequence[float]) -> float:
    if not values:
        raise ValueError("mean of empty sequence")
    return sum(values) / len(values)


def variance(values: Sequence[float]) -> float:
    """Unbiased sample variance (n-1 denominator)."""
    if len(values) < 2:
        return 0.0
    m = mean(values)
    return sum((v - m) ** 2 for v in values) / (len(values) - 1)


def std_dev(values: Sequence[float]) -> float:
    return math.sqrt(variance(values))


def _log_gamma(x: float) -> float:
    """Lanczos approximation of ln(Gamma(x)) for x > 0."""
    coefficients = (
        676.5203681218851,
        -1259.1392167224028,
        771.32342877765313,
        -176.61502916214059,
        12.507343278686905,
        -0.13857109526572012,
        9.9843695780195716e-6,
        1.5056327351493116e-7,
    )
    if x < 0.5:
        # Reflection formula.
        return math.log(math.pi / math.sin(math.pi * x)) - _log_gamma(1.0 - x)
    x -= 1.0
    a = 0.99999999999980993
    t = x + 7.5
    for i, coefficient in enumerate(coefficients):
        a += coefficient / (x + i + 1)
    return 0.5 * math.log(2 * math.pi) + (x + 0.5) * math.log(t) - t + math.log(a)


def _incomplete_beta(a: float, b: float, x: float) -> float:
    """Regularized incomplete beta function I_x(a, b), continued fraction."""
    if x <= 0.0:
        return 0.0
    if x >= 1.0:
        return 1.0
    # The continued fraction converges fast only for x below the mode;
    # otherwise use the symmetry I_x(a, b) = 1 - I_{1-x}(b, a).
    if x > (a + 1.0) / (a + b + 2.0):
        return 1.0 - _incomplete_beta(b, a, 1.0 - x)
    log_beta = _log_gamma(a + b) - _log_gamma(a) - _log_gamma(b)
    front = math.exp(log_beta + a * math.log(x) + b * math.log(1.0 - x)) / a
    # Lentz's algorithm for the continued fraction.
    tiny = 1e-30
    f, c, d = 1.0, 1.0, 0.0
    for i in range(200):
        m = i // 2
        if i == 0:
            numerator = 1.0
        elif i % 2 == 0:
            numerator = (m * (b - m) * x) / ((a + 2 * m - 1) * (a + 2 * m))
        else:
            numerator = -((a + m) * (a + b + m) * x) / (
                (a + 2 * m) * (a + 2 * m + 1)
            )
        d = 1.0 + numerator * d
        d = 1.0 / (d if abs(d) >= tiny else tiny)
        c = 1.0 + numerator / (c if abs(c) >= tiny else tiny)
        f *= c * d
        if abs(1.0 - c * d) < 1e-12:
            break
    return front * (f - 1.0)


def student_t_cdf(t: float, df: float) -> float:
    """CDF of Student's t distribution with ``df`` degrees of freedom."""
    if df <= 0:
        raise ValueError("degrees of freedom must be positive")
    if t == 0.0:
        return 0.5
    x = df / (df + t * t)
    probability = 0.5 * _incomplete_beta(df / 2.0, 0.5, x)
    return 1.0 - probability if t > 0 else probability


def student_t_quantile(p: float, df: float) -> float:
    """Inverse CDF by bisection (robust; speed is irrelevant here)."""
    if not 0.0 < p < 1.0:
        raise ValueError("p must be in (0, 1)")
    if p == 0.5:
        return 0.0
    lo, hi = -1e6, 1e6
    for _ in range(200):
        mid = (lo + hi) / 2.0
        if student_t_cdf(mid, df) < p:
            lo = mid
        else:
            hi = mid
    return (lo + hi) / 2.0


@dataclass(frozen=True)
class ConfidenceInterval:
    """A symmetric confidence interval around a sample mean."""

    mean: float
    half_width: float
    confidence: float
    n: int

    @property
    def low(self) -> float:
        return self.mean - self.half_width

    @property
    def high(self) -> float:
        return self.mean + self.half_width

    def contains(self, value: float) -> bool:
        return self.low <= value <= self.high


def confidence_interval(
    values: Sequence[float], confidence: float = 0.99
) -> ConfidenceInterval:
    """Student-t confidence interval for the mean of a small sample."""
    if len(values) < 2:
        raise ValueError("confidence interval needs at least 2 observations")
    if not 0.0 < confidence < 1.0:
        raise ValueError("confidence must be in (0, 1)")
    n = len(values)
    m = mean(values)
    s = std_dev(values)
    t = student_t_quantile(1.0 - (1.0 - confidence) / 2.0, n - 1)
    return ConfidenceInterval(
        mean=m,
        half_width=t * s / math.sqrt(n),
        confidence=confidence,
        n=n,
    )


@dataclass(frozen=True)
class DifferenceOfMeansResult:
    """Outcome of the two-tailed Welch difference-of-means test."""

    mean_difference: float
    t_statistic: float
    degrees_of_freedom: float
    p_value: float
    significant: bool
    significance_level: float


def difference_of_means(
    sample_a: Sequence[float],
    sample_b: Sequence[float],
    significance_level: float = 0.01,
) -> DifferenceOfMeansResult:
    """Two-tailed Welch t-test on the difference of two sample means.

    This is the paper's statistical check (Section 5.1) at its 0.01
    significance level.  Welch's form is used because the two algorithms'
    run-to-run variances need not match.
    """
    if len(sample_a) < 2 or len(sample_b) < 2:
        raise ValueError("each sample needs at least 2 observations")
    if not 0.0 < significance_level < 1.0:
        raise ValueError("significance_level must be in (0, 1)")
    mean_a, mean_b = mean(sample_a), mean(sample_b)
    var_a, var_b = variance(sample_a), variance(sample_b)
    na, nb = len(sample_a), len(sample_b)
    se_sq = var_a / na + var_b / nb
    if se_sq == 0.0:
        identical = mean_a == mean_b
        return DifferenceOfMeansResult(
            mean_difference=mean_a - mean_b,
            t_statistic=0.0 if identical else math.inf,
            degrees_of_freedom=float(na + nb - 2),
            p_value=1.0 if identical else 0.0,
            significant=not identical,
            significance_level=significance_level,
        )
    t_stat = (mean_a - mean_b) / math.sqrt(se_sq)
    df = se_sq**2 / (
        (var_a / na) ** 2 / (na - 1) + (var_b / nb) ** 2 / (nb - 1)
    )
    p_value = 2.0 * (1.0 - student_t_cdf(abs(t_stat), df))
    return DifferenceOfMeansResult(
        mean_difference=mean_a - mean_b,
        t_statistic=t_stat,
        degrees_of_freedom=df,
        p_value=p_value,
        significant=p_value < significance_level,
        significance_level=significance_level,
    )
