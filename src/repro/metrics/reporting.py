"""Plain-text reporting: the tables and series the experiments print.

Experiment runners produce series (x values plus one y series per
algorithm); this module renders them as aligned ASCII tables and as crude
inline charts so figure shapes are inspectable from a terminal, exactly how
the benchmark harness presents the reproduced figures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence


@dataclass
class Series:
    """One labelled y-series over shared x values."""

    label: str
    values: List[float]


@dataclass
class FigureData:
    """Everything needed to print one reproduced figure."""

    title: str
    x_label: str
    x_values: List[float]
    series: List[Series] = field(default_factory=list)
    y_label: str = "Deadline hit ratio (%)"
    notes: List[str] = field(default_factory=list)

    def add_series(self, label: str, values: Sequence[float]) -> None:
        if len(values) != len(self.x_values):
            raise ValueError(
                f"series {label!r} has {len(values)} points for "
                f"{len(self.x_values)} x values"
            )
        self.series.append(Series(label=label, values=list(values)))

    def series_by_label(self, label: str) -> Series:
        for series in self.series:
            if series.label == label:
                return series
        raise KeyError(f"no series labelled {label!r}")


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    precision: int = 2,
) -> str:
    """Render rows as an aligned, pipe-separated ASCII table."""

    def fmt(cell: object) -> str:
        if isinstance(cell, float):
            return f"{cell:.{precision}f}"
        return str(cell)

    text_rows = [[fmt(cell) for cell in row] for row in rows]
    widths = [
        max(len(header), *(len(row[i]) for row in text_rows)) if text_rows else len(header)
        for i, header in enumerate(headers)
    ]
    lines = [
        " | ".join(header.ljust(width) for header, width in zip(headers, widths)),
        "-+-".join("-" * width for width in widths),
    ]
    for row in text_rows:
        lines.append(
            " | ".join(cell.rjust(width) for cell, width in zip(row, widths))
        )
    return "\n".join(lines)


def format_figure(figure: FigureData, precision: int = 2) -> str:
    """Figure as a table: one row per x value, one column per series."""
    headers = [figure.x_label] + [series.label for series in figure.series]
    rows = []
    for i, x in enumerate(figure.x_values):
        rows.append([x] + [series.values[i] for series in figure.series])
    parts = [figure.title, format_table(headers, rows, precision=precision)]
    if figure.notes:
        parts.append("")
        parts.extend(f"note: {note}" for note in figure.notes)
    return "\n".join(parts)


def ascii_chart(
    figure: FigureData, width: int = 50, y_max: Optional[float] = None
) -> str:
    """A crude horizontal bar chart, one bar per (x, series) pair.

    Good enough to eyeball whether a curve rises, flattens, or crosses —
    which is exactly what "reproducing the figure's shape" means here.
    """
    if y_max is None:
        peak = max(
            (v for series in figure.series for v in series.values), default=0.0
        )
        y_max = peak or 1.0
    lines = [figure.title]
    label_width = max(
        (len(series.label) for series in figure.series), default=0
    )
    for i, x in enumerate(figure.x_values):
        lines.append(f"{figure.x_label} = {x}")
        for series in figure.series:
            value = series.values[i]
            bar = "#" * max(0, round(width * value / y_max))
            lines.append(f"  {series.label.ljust(label_width)} |{bar} {value:.1f}")
    return "\n".join(lines)


def format_gantt(
    lanes: Dict[int, List[tuple]],
    width: int = 72,
    until: Optional[float] = None,
) -> str:
    """Render per-processor execution lanes as an ASCII timeline.

    ``lanes`` is the :meth:`~repro.simulator.trace.SimulationTrace.gantt`
    output: processor -> sorted ``(task_id, start, finish)`` triples.  Each
    processor gets one row; executed intervals are drawn with ``#`` and gaps
    (idle time) with ``.``, scaled so the horizon fits in ``width`` columns.
    """
    if not lanes:
        return "(no completed tasks)"
    horizon = until
    if horizon is None:
        horizon = max(
            finish for lane in lanes.values() for _, _, finish in lane
        )
    if horizon <= 0:
        return "(empty horizon)"
    scale = width / horizon
    rows = [f"0 {'-' * (width - len(str(round(horizon))) - 2)} {horizon:g}"]
    for processor in sorted(lanes):
        cells = ["."] * width
        for _, start, finish in lanes[processor]:
            first = min(width - 1, int(start * scale))
            last = min(width - 1, max(first, int(finish * scale) - 1))
            for col in range(first, last + 1):
                cells[col] = "#"
        busy = sum(finish - start for _, start, finish in lanes[processor])
        rows.append(
            f"P{processor:<3d}|{''.join(cells)}| {100 * busy / horizon:5.1f}%"
        )
    return "\n".join(rows)


def comparison_summary(
    figure: FigureData, champion: str, challenger: str
) -> Dict[str, float]:
    """Headline numbers for a two-algorithm figure.

    Returns the maximum advantage of ``champion`` over ``challenger`` across
    x values, the advantage at the final x, and each side's end-to-end gain
    — the quantities the paper's prose cites ("by as much as 60%...").
    """
    a = figure.series_by_label(champion).values
    b = figure.series_by_label(challenger).values
    gaps = [x - y for x, y in zip(a, b)]
    return {
        "max_advantage": max(gaps),
        "final_advantage": gaps[-1],
        f"{champion}_gain": a[-1] - a[0],
        f"{challenger}_gain": b[-1] - b[0],
    }
