"""Deadline-compliance metrics (the paper's performance measures).

*Deadline compliance* is the percentage of tasks that complete by their
deadline; *scalability* is the ability to increase compliance as processors
are added.  This module computes both, plus the per-class and per-phase
breakdowns the analysis sections use.

This is the *base* metrics layer: every compliance-style ratio in the
codebase — :attr:`~repro.runtime.report.RunReport.hit_ratio`,
``guarantee_ratio``, :meth:`SimulationTrace.hit_ratio` — bottoms out in
:func:`ratio` here, so the zero-task guard and the division live in
exactly one place.  It imports nothing from the runtime layers (they
import it), which is also why the canonical terminal-state names are
defined here and re-exported by the trace/report modules.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

#: Canonical task terminal states, shared by every backend's records.
STATUS_COMPLETED = "completed"
STATUS_EXPIRED = "expired"  # dropped from a batch, deadline already hopeless
STATUS_FAILED = "failed"  # in flight on a processor that crashed


def ratio(numerator: int, denominator: int) -> float:
    """The single division behind every compliance-style ratio.

    A zero (or negative) denominator yields 0.0 — an empty run complied
    with nothing rather than raising mid-report.
    """
    if denominator <= 0:
        return 0.0
    return numerator / denominator


def percent(numerator: int, denominator: int) -> float:
    """:func:`ratio` scaled to the paper's percentage axes."""
    return 100.0 * ratio(numerator, denominator)


@dataclass(frozen=True)
class ComplianceReport:
    """Digest of one run's deadline behaviour."""

    total_tasks: int
    deadline_hits: int
    completed: int
    completed_late: int
    expired: int
    scheduled_but_missed: int

    @property
    def hit_ratio(self) -> float:
        return ratio(self.deadline_hits, self.total_tasks)

    @property
    def hit_percent(self) -> float:
        return percent(self.deadline_hits, self.total_tasks)


def compliance_report(trace: "SimulationTrace") -> ComplianceReport:
    """Aggregate one trace into a :class:`ComplianceReport`."""
    completed = trace.completed()
    hits = trace.deadline_hits()
    return ComplianceReport(
        total_tasks=trace.total_tasks(),
        deadline_hits=hits,
        completed=len(completed),
        completed_late=len(completed) - hits,
        expired=len(trace.expired()),
        scheduled_but_missed=len(trace.scheduled_but_missed()),
    )


def hit_ratio_by_tag(trace: "SimulationTrace") -> Dict[str, float]:
    """Deadline hit ratio split by task tag (e.g. 'indexed' vs 'scan')."""
    totals: Dict[str, int] = {}
    hits: Dict[str, int] = {}
    for record in trace.records.values():
        tag = record.task.tag or "untagged"
        totals[tag] = totals.get(tag, 0) + 1
        if record.met_deadline:
            hits[tag] = hits.get(tag, 0) + 1
    return {tag: hits.get(tag, 0) / total for tag, total in totals.items()}


def processor_balance(
    trace: "SimulationTrace", num_processors: int
) -> List[int]:
    """Completed-task counts per processor — the load-balance picture."""
    counts = [0] * num_processors
    for record in trace.records.values():
        if record.status == STATUS_COMPLETED and record.processor is not None:
            counts[record.processor] += 1
    return counts


def scalability_gain(hit_ratios: Sequence[float]) -> float:
    """End-to-end compliance gain over a processor sweep.

    Positive when adding processors raised compliance — the paper's
    definition of scaling up to the high end.  Input is the hit-ratio series
    in increasing-processor order.
    """
    if len(hit_ratios) < 2:
        return 0.0
    return hit_ratios[-1] - hit_ratios[0]


def is_monotone_nondecreasing(
    values: Sequence[float], tolerance: float = 0.0
) -> bool:
    """Whether a series never drops by more than ``tolerance``.

    Used to characterize scalability curves (RT-SADS's should pass with a
    small tolerance for sampling noise; D-COLS's typically does not rise).
    """
    return all(
        later >= earlier - tolerance
        for earlier, later in zip(values, values[1:])
    )
