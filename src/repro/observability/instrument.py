"""The instrumentation bundle every layer hooks into.

:class:`Instrumentation` groups the three primitives — metrics registry,
structured logger, trace sink — behind one object with an ``enabled`` flag.
Instrumented code follows one discipline:

* **hot paths** guard on ``obs.enabled`` before touching anything, so the
  disabled case costs a single attribute read;
* **cold paths** may call :meth:`emit` / :meth:`span` unguarded — both
  short-circuit when disabled.

A module-level default (:func:`get_instrumentation` /
:func:`set_instrumentation`) lets the experiment CLI switch the whole stack
on without threading a parameter through every constructor; components also
accept an explicit ``instrumentation=`` for isolated use (tests, library
embedding).  The default is :data:`NULL_INSTRUMENTATION` — everything off —
so importing the library never logs, writes, or counts.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Dict, List, Optional

from .log import OFF, StructuredLogger
from .metrics import MetricsRegistry
from .sinks import NULL_SINK, TraceSink
from .tracing import NULL_SPAN, Span


class Instrumentation:
    """Metrics + logger + trace sink, with run/phase context binding."""

    __slots__ = ("metrics", "logger", "sink", "enabled", "context", "cells")

    def __init__(
        self,
        metrics: Optional[MetricsRegistry] = None,
        logger: Optional[StructuredLogger] = None,
        sink: Optional[TraceSink] = None,
        enabled: bool = True,
        context: Optional[Dict[str, object]] = None,
        cells: Optional[List[Dict[str, object]]] = None,
    ) -> None:
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.logger = (
            logger
            if logger is not None
            else StructuredLogger(level=OFF if not enabled else "warning")
        )
        self.sink = sink if sink is not None else NULL_SINK
        self.enabled = enabled
        self.context = dict(context or {})
        #: Per-cell snapshots recorded by the experiment runner.
        self.cells = cells if cells is not None else []

    @classmethod
    def disabled(cls) -> "Instrumentation":
        return cls(enabled=False, logger=StructuredLogger(level=OFF))

    def bind(self, **context: object) -> "Instrumentation":
        """A view sharing metrics/sink/cells but carrying extra context.

        Bound context is stamped onto every emitted event and log record —
        this is how a trace line knows which run and scheduler produced it.
        """
        merged = dict(self.context)
        merged.update(context)
        return Instrumentation(
            metrics=self.metrics,
            logger=self.logger.bind(**context),
            sink=self.sink,
            enabled=self.enabled,
            context=merged,
            cells=self.cells,
        )

    def emit(self, kind: str, **fields: object) -> None:
        """Send one trace event (bound context merged in); no-op if off."""
        if not self.enabled:
            return
        event: Dict[str, object] = {"event": kind}
        event.update(self.context)
        event.update(fields)
        self.sink.emit(event)

    def span(self, name: str, **attrs: object) -> "Span | object":
        """A timed section; returns the shared null span when disabled."""
        if not self.enabled:
            return NULL_SPAN
        return Span(self, name, attrs)

    def record_cell(self, summary: Dict[str, object]) -> None:
        """Store one experiment cell's summary for ``--metrics-out``."""
        if self.enabled:
            self.cells.append(summary)

    def close(self) -> None:
        self.sink.close()


#: The everything-off singleton used until someone opts in.
NULL_INSTRUMENTATION = Instrumentation.disabled()

_default: Instrumentation = NULL_INSTRUMENTATION


def get_instrumentation() -> Instrumentation:
    """The process-wide instrumentation (disabled unless opted in)."""
    return _default


def set_instrumentation(obs: Optional[Instrumentation]) -> Instrumentation:
    """Install ``obs`` as the process default (None restores disabled)."""
    global _default
    _default = obs if obs is not None else NULL_INSTRUMENTATION
    return _default


@contextmanager
def instrumented(obs: Instrumentation):
    """Temporarily install ``obs`` as the default (tests, one-off runs)."""
    previous = get_instrumentation()
    set_instrumentation(obs)
    try:
        yield obs
    finally:
        set_instrumentation(previous)
