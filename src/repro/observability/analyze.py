"""Trace replay: deadline-miss attribution, timelines, and trace diffs.

A merged trace (simulator or live cluster — the event vocabulary is
shared) contains everything needed to answer *why* each deadline was
missed, not just how many were.  This module replays the ``task``
transitions and ``span`` phase records from one trace and classifies
every miss into exactly one cause:

``worker_failure``
    The task was on a worker that died (``failed``) or had its
    assignment surrendered (``surrendered``) and could not recover in
    time.  Failure dominates every other explanation: whatever else went
    wrong, the crash is the story.
``execution_overrun``
    The task started with enough budget to meet its deadline but the
    physical execution outran the worst-case estimate (live runs stamp
    the evidence directly as ``overrun_seconds``).
``dispatch_delay``
    The task was placed — dispatched/delivered, or explicitly declined
    at the master's dispatch-time re-validation — but too late for the
    remaining slack: the delay between feasibility and execution ate the
    deadline.
``search_latency``
    The task was never placed although scheduling phases ran while it
    was live: the feasibility search could not fit it (or spent its
    quantum elsewhere) before the deadline passed.
``admission_wait``
    Nothing ever considered the task: it expired waiting for a phase to
    open.  The catch-all — every miss matches one of the five.

Classification is a strict first-match cascade in the order above, so
attribution is total (100% of misses) and exclusive (exactly one cause
per miss) by construction.

Orthogonally to the *cause*, every miss is labeled with the workload's
offline schedulability verdict (:mod:`repro.analysis.schedulability`),
reconstructed from the trace's enriched ``arrived`` events: a miss on a
provably-**feasible** workload is *regret* — the scheduler alone left
the deadline on the table — while a miss on a provably-**infeasible**
workload may have been forced by the workload no matter the scheduler.
Traces that predate arrival enrichment classify as ``unknown``.

Sharded traces additionally label each miss with the task's
inter-domain migration path (``migrated`` transitions carrying
``from_domain``/``to_domain``), so cross-domain misses stay attributable
without adding a sixth cause: migration moves a task between masters, it
never by itself explains a miss.

The module is pure: functions take event lists (as returned by
:func:`~repro.observability.sinks.read_jsonl`) and return dataclasses or
rendered ASCII tables.  The ``repro trace`` CLI is a thin wrapper.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..analysis.schedulability import (
    FEASIBLE,
    INFEASIBLE,
    UNKNOWN,
    SchedulabilityVerdict,
    analyze_triples,
)

#: Deadline-comparison slop in virtual units (mirrors the core EPSILON).
EPSILON = 1e-9

CAUSE_WORKER_FAILURE = "worker_failure"
CAUSE_EXECUTION_OVERRUN = "execution_overrun"
CAUSE_DISPATCH_DELAY = "dispatch_delay"
CAUSE_SEARCH_LATENCY = "search_latency"
CAUSE_ADMISSION_WAIT = "admission_wait"

#: Every cause the classifier can assign, in cascade (precedence) order.
CAUSES = (
    CAUSE_WORKER_FAILURE,
    CAUSE_EXECUTION_OVERRUN,
    CAUSE_DISPATCH_DELAY,
    CAUSE_SEARCH_LATENCY,
    CAUSE_ADMISSION_WAIT,
)

#: Transitions that mean "the task was handed to a processor".
_PLACED = ("dispatched", "delivered")
#: Transitions that mean "execution began on a processor".
_STARTED = ("started", "exec_started")

# Terminal outcomes a task timeline can end in.
OUTCOME_MET = "met"
OUTCOME_LATE = "late"
OUTCOME_EXPIRED = "expired"
OUTCOME_FAILED = "failed"
OUTCOME_INCOMPLETE = "incomplete"


def _num(value: object) -> Optional[float]:
    """The value as a float when it is one (bools excluded), else None."""
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        return None
    return float(value)


@dataclass
class TaskTimeline:
    """Every ``task`` transition one task went through, in trace order."""

    task_id: int
    transitions: List[Dict[str, object]] = field(default_factory=list)

    def has(self, *names: str) -> bool:
        """Whether any transition with one of ``names`` occurred."""
        return any(t.get("transition") in names for t in self.transitions)

    def first(self, *names: str) -> Optional[Dict[str, object]]:
        """The earliest transition matching ``names`` (None if absent)."""
        for event in self.transitions:
            if event.get("transition") in names:
                return event
        return None

    def last(self, *names: str) -> Optional[Dict[str, object]]:
        """The latest transition matching ``names`` (None if absent)."""
        for event in reversed(self.transitions):
            if event.get("transition") in names:
                return event
        return None

    def field_value(self, key: str) -> Optional[float]:
        """The first numeric value of ``key`` carried by any transition."""
        for event in self.transitions:
            value = _num(event.get(key))
            if value is not None:
                return value
        return None

    @property
    def arrival(self) -> Optional[float]:
        """Arrival time, from whichever transition recorded it."""
        arrived = self.first("arrived")
        if arrived is not None:
            t = _num(arrived.get("t"))
            if t is not None:
                return t
        return self.field_value("arrival")

    @property
    def deadline(self) -> Optional[float]:
        """Absolute deadline, from whichever transition recorded it."""
        return self.field_value("deadline")

    def migration_path(self) -> Optional[str]:
        """Domain hops of completed migrations, e.g. ``"0->1"``.

        Sharded runs emit a ``migrated`` transition per accepted
        inter-domain handoff (offers that were declined or timed out do
        not move the task and do not count).  None for unsharded traces.
        """
        path: List[str] = []
        for event in self.transitions:
            if event.get("transition") != "migrated":
                continue
            source = event.get("from_domain")
            target = event.get("to_domain")
            if not path:
                path.append(str(source))
            path.append(str(target))
        return "->".join(path) if path else None

    def outcome(self) -> str:
        """Terminal outcome of the timeline (last terminal event wins)."""
        terminal = self.last("finished", "expired", "failed")
        if terminal is None:
            return OUTCOME_INCOMPLETE
        transition = terminal.get("transition")
        if transition == "expired":
            return OUTCOME_EXPIRED
        if transition == "failed":
            return OUTCOME_FAILED
        if terminal.get("met_deadline") is True:
            return OUTCOME_MET
        if terminal.get("met_deadline") is False:
            return OUTCOME_LATE
        # No explicit verdict on the finish event: derive one.
        t = _num(terminal.get("t"))
        deadline = self.deadline
        if t is not None and deadline is not None:
            return OUTCOME_MET if t <= deadline + EPSILON else OUTCOME_LATE
        return OUTCOME_MET


@dataclass
class MissAttribution:
    """One missed deadline with its single attributed cause."""

    task_id: int
    cause: str
    outcome: str
    detail: str
    deadline: Optional[float] = None
    miss_time: Optional[float] = None
    phase: Optional[int] = None
    #: The trace-level oracle verdict this miss happened under: a miss on
    #: a provably-``feasible`` workload is *regret* (the scheduler alone
    #: is to blame), one on a provably-``infeasible`` workload may have
    #: been forced by the workload itself, and ``unknown`` means the
    #: trace lacked the per-task data to decide.
    workload: str = UNKNOWN
    #: Domain hops when the task was migrated between scheduling domains
    #: before missing (``"0->1"``); None for unmigrated tasks.  This is
    #: orthogonal to the cause — migration moves a task, it is never
    #: itself one of the five causes.
    migration: Optional[str] = None

    @property
    def is_regret(self) -> bool:
        """True when no scheduler could have missed this deadline set."""
        return self.workload == FEASIBLE


@dataclass
class AttributionReport:
    """Every miss in one trace, classified; plus the run-level tallies."""

    total_tasks: int
    outcomes: Counter
    misses: List[MissAttribution]
    phases: int
    #: Offline schedulability verdict reconstructed from the trace's
    #: ``arrived`` events (None when the trace predates arrival
    #: enrichment or omits ``run_start``'s worker count).
    oracle: Optional[SchedulabilityVerdict] = None

    @property
    def by_cause(self) -> Counter:
        """Miss counts per cause (zero-miss causes omitted)."""
        return Counter(miss.cause for miss in self.misses)

    @property
    def by_phase(self) -> Counter:
        """Miss counts per dispatch phase; never-placed misses key None."""
        return Counter(miss.phase for miss in self.misses)

    @property
    def migrated_misses(self) -> int:
        """Misses on tasks that crossed a scheduling-domain boundary."""
        return sum(1 for miss in self.misses if miss.migration)

    @property
    def workload_class(self) -> str:
        """Oracle verdict string for the whole trace (``unknown`` w/o one)."""
        return self.oracle.verdict if self.oracle is not None else UNKNOWN

    @property
    def regret_misses(self) -> int:
        """Misses the oracle proves avoidable.

        On a provably-feasible workload every miss is regret; on a
        provably-infeasible one only the misses beyond the oracle's
        forced-miss floor are (the floor's worth may have been inevitable
        no matter the scheduler); without a verdict nothing is claimed.
        """
        if self.oracle is None or self.workload_class == UNKNOWN:
            return 0
        return max(0, len(self.misses) - self.oracle.forced_misses)


def trace_oracle(
    events: Sequence[Dict[str, object]],
    timelines: Dict[int, TaskTimeline],
) -> Optional[SchedulabilityVerdict]:
    """Schedulability verdict of the workload one trace recorded.

    Rebuilds ``(arrival, cost, deadline)`` triples from the task
    timelines and the worker count from ``run_start``, then runs the
    offline oracle (:mod:`repro.analysis.schedulability`).  Returns None
    — *no claim*, rather than a guess — unless **every** task carries
    all three numbers: a partial reconstruction could misclassify the
    workload (e.g. calling it feasible because the costly tasks were the
    undocumented ones).
    """
    workers = None
    for event in events:
        if event.get("event") == "run_start":
            workers = _num(event.get("workers"))
            break
    if workers is None or int(workers) <= 0 or not timelines:
        return None
    triples = []
    for timeline in timelines.values():
        arrival = timeline.arrival
        cost = timeline.field_value("cost")
        deadline = timeline.deadline
        if arrival is None or cost is None or deadline is None:
            return None
        triples.append((arrival, cost, deadline))
    return analyze_triples(triples, int(workers))


def build_timelines(
    events: Sequence[Dict[str, object]],
) -> Dict[int, TaskTimeline]:
    """Group a trace's ``task`` transitions by task id, preserving order."""
    timelines: Dict[int, TaskTimeline] = {}
    for event in events:
        if event.get("event") != "task":
            continue
        task_id = event.get("task_id")
        if not isinstance(task_id, int):
            continue
        timeline = timelines.get(task_id)
        if timeline is None:
            timeline = timelines[task_id] = TaskTimeline(task_id=task_id)
        timeline.transitions.append(event)
    return timelines


def phase_windows(
    events: Sequence[Dict[str, object]],
) -> List[Tuple[float, float]]:
    """Virtual-time windows ``(open, close)`` of every scheduling phase.

    Phase spans stamp their opening virtual time ``t`` and how much of the
    quantum the search consumed (``time_used``); the window closes at
    ``t + time_used`` (or ``t`` when the span predates that field).  Live
    traces wrap every scheduler ``phase`` span in a ``cluster_phase``
    span; when the outer kind is present only it is counted, so one phase
    is one window on both backends.
    """
    spans = [event for event in events if event.get("event") == "span"]
    names = {event.get("name") for event in spans}
    wanted = "cluster_phase" if "cluster_phase" in names else "phase"
    windows: List[Tuple[float, float]] = []
    for event in spans:
        if event.get("name") != wanted:
            continue
        opened = _num(event.get("t"))
        if opened is None:
            continue
        used = _num(event.get("time_used")) or 0.0
        windows.append((opened, opened + used))
    return windows


def classify_miss(
    timeline: TaskTimeline, phases: Sequence[Tuple[float, float]]
) -> Tuple[str, str]:
    """One (cause, human-readable detail) for a missed-deadline timeline.

    Implements the module-level cascade; the final branch is a catch-all,
    so every miss receives exactly one cause.
    """
    deadline = timeline.deadline

    # 1. A crash explains everything downstream of it.
    if timeline.has("failed", "surrendered"):
        lost = timeline.last("failed", "surrendered")
        worker = lost.get("processor", lost.get("worker"))
        return CAUSE_WORKER_FAILURE, (
            f"assignment lost to worker {worker} "
            f"({lost.get('transition')}); "
            f"rescheduling could not recover the deadline"
        )

    started = timeline.first(*_STARTED)
    finished = timeline.last("finished")

    # 2. Started in time, finished late: the execution itself overran.
    if finished is not None and started is not None:
        overrun = _num(finished.get("overrun_seconds"))
        if overrun is None:
            exec_finished = timeline.last("exec_finished")
            if exec_finished is not None:
                overrun = _num(exec_finished.get("overrun_seconds"))
        if overrun is not None and overrun > 0:
            return CAUSE_EXECUTION_OVERRUN, (
                f"execution exceeded its worst-case budget by "
                f"{overrun:.6f}s"
            )
        start_t = _num(started.get("t"))
        planned = timeline.field_value("planned_cost")
        if (
            start_t is not None
            and planned is not None
            and deadline is not None
            and start_t + planned <= deadline + EPSILON
        ):
            return CAUSE_EXECUTION_OVERRUN, (
                f"started at t={start_t:.3f} with budget {planned:.3f} "
                f"inside deadline {deadline:.3f}, yet finished late"
            )

    # 3. It was placed (or explicitly declined at dispatch) — the delay
    #    between feasibility and execution consumed the slack.
    placed = timeline.first(*_PLACED)
    if placed is not None or timeline.has("dispatch_rejected"):
        if placed is not None:
            t = _num(placed.get("t"))
            where = f"placed at t={t:.3f}" if t is not None else "placed"
        else:
            rejected = timeline.last("dispatch_rejected")
            t = _num(rejected.get("t"))
            where = (
                f"declined at dispatch re-validation (t={t:.3f})"
                if t is not None
                else "declined at dispatch re-validation"
            )
        return CAUSE_DISPATCH_DELAY, (
            f"{where}; dispatch/communication delay left too little "
            f"slack before the deadline"
        )

    # 4. Never placed, but the search ran while the task was live.
    arrival = timeline.arrival
    if deadline is not None:
        window_start = arrival if arrival is not None else float("-inf")
        for opened, closed in phases:
            if closed >= window_start - EPSILON and (
                opened <= deadline + EPSILON
            ):
                return CAUSE_SEARCH_LATENCY, (
                    f"a scheduling phase ran at t={opened:.3f} while the "
                    f"task was live but never produced a feasible slot"
                )

    # 5. Nothing considered it before the deadline passed.
    return CAUSE_ADMISSION_WAIT, (
        "expired waiting for a scheduling phase to consider it"
    )


def attribute_misses(
    events: Sequence[Dict[str, object]],
) -> AttributionReport:
    """Replay one trace and classify every missed deadline.

    Every task whose terminal outcome is late, expired, or failed is a
    miss; each receives exactly one cause from :func:`classify_miss`.
    """
    timelines = build_timelines(events)
    phases = phase_windows(events)
    oracle = trace_oracle(events, timelines)
    workload = oracle.verdict if oracle is not None else UNKNOWN
    outcomes: Counter = Counter()
    misses: List[MissAttribution] = []
    for task_id in sorted(timelines):
        timeline = timelines[task_id]
        outcome = timeline.outcome()
        outcomes[outcome] += 1
        if outcome not in (OUTCOME_LATE, OUTCOME_EXPIRED, OUTCOME_FAILED):
            continue
        cause, detail = classify_miss(timeline, phases)
        terminal = timeline.last("finished", "expired", "failed")
        placed = timeline.first(*_PLACED)
        phase = None
        if placed is not None and isinstance(placed.get("phase"), int):
            phase = placed["phase"]
        misses.append(
            MissAttribution(
                task_id=task_id,
                cause=cause,
                outcome=outcome,
                detail=detail,
                deadline=timeline.deadline,
                miss_time=(
                    _num(terminal.get("t")) if terminal is not None else None
                ),
                phase=phase,
                workload=workload,
                migration=timeline.migration_path(),
            )
        )
    return AttributionReport(
        total_tasks=len(timelines),
        outcomes=outcomes,
        misses=misses,
        phases=len(phases),
        oracle=oracle,
    )


# ----- rendering ------------------------------------------------------------


def _table(
    headers: Sequence[str], rows: Sequence[Sequence[object]]
) -> List[str]:
    """Left-aligned ASCII table lines (headers underlined with dashes)."""
    cells = [[str(h) for h in headers]] + [
        [str(c) for c in row] for row in rows
    ]
    widths = [
        max(len(row[col]) for row in cells) for col in range(len(headers))
    ]
    lines = []
    for index, row in enumerate(cells):
        lines.append(
            "  ".join(cell.ljust(width) for cell, width in zip(row, widths))
            .rstrip()
        )
        if index == 0:
            lines.append("  ".join("-" * width for width in widths))
    return lines


def _oracle_line(report: AttributionReport, total_misses: int) -> str:
    """One sentence classifying the misses against the workload oracle."""
    verdict = report.workload_class
    if verdict == FEASIBLE:
        return (
            f"workload oracle: provably feasible — all {total_misses} "
            f"misses are regret (a clairvoyant scheduler misses none)"
        )
    if verdict == INFEASIBLE:
        forced = report.oracle.forced_misses
        return (
            f"workload oracle: provably infeasible (>= {forced} forced "
            f"misses) — regret beyond that floor: {report.regret_misses}"
        )
    return (
        "workload oracle: unknown (trace lacks per-task arrival/cost/"
        "deadline or a run_start worker count)"
    )


def render_attribution(report: AttributionReport) -> str:
    """The attribution report as human-readable ASCII tables."""
    lines = [
        f"tasks {report.total_tasks}, phases {report.phases}: "
        + ", ".join(
            f"{report.outcomes.get(outcome, 0)} {outcome}"
            for outcome in (
                OUTCOME_MET,
                OUTCOME_LATE,
                OUTCOME_EXPIRED,
                OUTCOME_FAILED,
                OUTCOME_INCOMPLETE,
            )
            if report.outcomes.get(outcome, 0)
        ),
        "",
    ]
    total_misses = len(report.misses)
    if not total_misses:
        lines.append("no deadline misses: nothing to attribute")
        return "\n".join(lines)
    by_cause = report.by_cause
    lines.append(f"deadline misses: {total_misses} (100% attributed)")
    lines.append(_oracle_line(report, total_misses))
    if report.migrated_misses:
        lines.append(
            f"cross-domain: {report.migrated_misses} of {total_misses} "
            f"misses were on tasks migrated between scheduling domains"
        )
    lines.extend(
        _table(
            ["cause", "misses", "share"],
            [
                [
                    cause,
                    by_cause[cause],
                    f"{100.0 * by_cause[cause] / total_misses:.1f}%",
                ]
                for cause in CAUSES
                if by_cause.get(cause)
            ],
        )
    )
    lines.append("")
    lines.append("by dispatch phase (never-placed misses under '-'):")
    by_phase = report.by_phase
    lines.extend(
        _table(
            ["phase", "misses"],
            [
                ["-" if phase is None else phase, count]
                for phase, count in sorted(
                    by_phase.items(),
                    key=lambda kv: (kv[0] is None, kv[0] or 0),
                )
            ],
        )
    )
    lines.append("")
    # The 'migrated' column only appears for sharded traces, so single-
    # domain reports render exactly as they always have.
    sharded = report.migrated_misses > 0
    headers = ["task", "outcome", "cause", "workload", "deadline", "missed at"]
    if sharded:
        headers.append("migrated")
    rows = []
    for miss in report.misses:
        row = [
            miss.task_id,
            miss.outcome,
            miss.cause,
            "regret" if miss.is_regret else miss.workload,
            "-" if miss.deadline is None else f"{miss.deadline:.1f}",
            "-" if miss.miss_time is None else f"{miss.miss_time:.1f}",
        ]
        if sharded:
            row.append(miss.migration or "-")
        rows.append(row)
    lines.extend(_table(headers, rows))
    return "\n".join(lines)


def render_timeline(
    events: Sequence[Dict[str, object]],
    phase: Optional[int] = None,
    width: int = 72,
) -> str:
    """An ASCII per-processor Gantt chart of one trace (or one phase).

    Each processor gets a row; a task occupies the columns between its
    start (execution start, falling back to placement) and its finish,
    drawn with its task id's last digit and ``!`` on the finishing column
    of a missed deadline.  ``phase`` restricts the chart to tasks placed
    in that scheduling phase.
    """
    timelines = build_timelines(events)
    intervals: List[Tuple[int, float, float, int, bool]] = []
    for timeline in timelines.values():
        placed = timeline.first(*_PLACED)
        if placed is None:
            continue
        if phase is not None and placed.get("phase") != phase:
            continue
        processor = placed.get("processor")
        if not isinstance(processor, int):
            continue
        started = timeline.first(*_STARTED)
        begin = _num((started or placed).get("t"))
        if begin is None:
            begin = _num(placed.get("t"))
        terminal = timeline.last("finished", "expired", "failed")
        end = _num(terminal.get("t")) if terminal is not None else None
        if begin is None or end is None or end < begin:
            continue
        missed = timeline.outcome() in (
            OUTCOME_LATE,
            OUTCOME_EXPIRED,
            OUTCOME_FAILED,
        )
        intervals.append(
            (processor, begin, end, timeline.task_id, missed)
        )
    if not intervals:
        scope = "trace" if phase is None else f"phase {phase}"
        return f"no executed tasks in this {scope}"
    t_min = min(begin for _, begin, _, _, _ in intervals)
    t_max = max(end for _, _, end, _, _ in intervals)
    span = max(t_max - t_min, EPSILON)
    scale = (width - 1) / span

    def col(t: float) -> int:
        return min(width - 1, max(0, int((t - t_min) * scale)))

    processors = sorted({p for p, _, _, _, _ in intervals})
    label_width = max(len(f"P{p}") for p in processors)
    lines = [
        f"t = [{t_min:.1f}, {t_max:.1f}] virtual units, "
        f"{span / width:.2f} units/column"
        + ("" if phase is None else f", phase {phase} only"),
    ]
    for processor in processors:
        row = [" "] * width
        for p, begin, end, task_id, missed in sorted(
            intervals, key=lambda iv: iv[1]
        ):
            if p != processor:
                continue
            lo, hi = col(begin), col(end)
            digit = str(task_id % 10)
            for column in range(lo, hi + 1):
                row[column] = digit
            if missed:
                row[hi] = "!"
        lines.append(f"P{processor}".ljust(label_width) + " |" + "".join(row))
    lines.append(
        "".ljust(label_width)
        + " +"
        + "-" * width
    )
    lines.append("digits: task id mod 10; '!': deadline missed")
    return "\n".join(lines)


@dataclass
class TraceDiff:
    """Structural comparison of two traces (e.g. sim vs cluster)."""

    tasks_a: int
    tasks_b: int
    only_in_a: List[int]
    only_in_b: List[int]
    outcome_changes: List[Tuple[int, str, str]]
    causes_a: Counter
    causes_b: Counter

    @property
    def identical_outcomes(self) -> bool:
        """True when both traces saw the same tasks with equal outcomes."""
        return not (
            self.only_in_a or self.only_in_b or self.outcome_changes
        )


def diff_traces(
    events_a: Sequence[Dict[str, object]],
    events_b: Sequence[Dict[str, object]],
) -> TraceDiff:
    """Compare two traces task by task: presence, outcome, miss causes."""
    report_a = attribute_misses(events_a)
    report_b = attribute_misses(events_b)
    lines_a = build_timelines(events_a)
    lines_b = build_timelines(events_b)
    shared = sorted(set(lines_a) & set(lines_b))
    changes = []
    for task_id in shared:
        outcome_a = lines_a[task_id].outcome()
        outcome_b = lines_b[task_id].outcome()
        if outcome_a != outcome_b:
            changes.append((task_id, outcome_a, outcome_b))
    return TraceDiff(
        tasks_a=len(lines_a),
        tasks_b=len(lines_b),
        only_in_a=sorted(set(lines_a) - set(lines_b)),
        only_in_b=sorted(set(lines_b) - set(lines_a)),
        outcome_changes=changes,
        causes_a=report_a.by_cause,
        causes_b=report_b.by_cause,
    )


def render_diff(
    diff: TraceDiff, label_a: str = "A", label_b: str = "B"
) -> str:
    """The trace diff as ASCII tables; empty sections are elided."""
    lines = [
        f"{label_a}: {diff.tasks_a} tasks; {label_b}: {diff.tasks_b} tasks"
    ]
    if diff.only_in_a:
        lines.append(f"only in {label_a}: {diff.only_in_a}")
    if diff.only_in_b:
        lines.append(f"only in {label_b}: {diff.only_in_b}")
    if diff.outcome_changes:
        lines.append("")
        lines.extend(
            _table(
                ["task", label_a, label_b],
                [list(change) for change in diff.outcome_changes],
            )
        )
    if diff.causes_a or diff.causes_b:
        lines.append("")
        lines.extend(
            _table(
                ["miss cause", label_a, label_b],
                [
                    [
                        cause,
                        diff.causes_a.get(cause, 0),
                        diff.causes_b.get(cause, 0),
                    ]
                    for cause in CAUSES
                    if diff.causes_a.get(cause) or diff.causes_b.get(cause)
                ],
            )
        )
    if diff.identical_outcomes:
        lines.append("every shared task reached the same outcome")
    return "\n".join(lines)
