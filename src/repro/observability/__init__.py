"""Observability: metrics registry, structured logging, spans, trace sinks.

The instrumentation layer the simulator, scheduler, database, and experiment
harness hook into.  Off by default and near-free when disabled: the
process-wide default is :data:`NULL_INSTRUMENTATION`, hot paths guard on
``obs.enabled``, and nothing in this package imports beyond the stdlib.

Typical opt-in (what ``python -m repro.experiments --verbose --trace-out``
does under the hood)::

    from repro.observability import (
        Instrumentation, JsonlSink, StructuredLogger, instrumented,
    )

    obs = Instrumentation(
        logger=StructuredLogger(level="info"),
        sink=JsonlSink("trace.jsonl"),
    )
    with instrumented(obs):
        result = simulate(scheduler, tasks, num_workers=8)
    print(obs.metrics.snapshot())

See :mod:`repro.observability.sinks` for the JSONL event schema.
"""

from .analyze import (
    CAUSES,
    AttributionReport,
    MissAttribution,
    TraceDiff,
    attribute_misses,
    diff_traces,
    render_attribution,
    render_diff,
    render_timeline,
    trace_oracle,
)
from .clockskew import ClockOffsetEstimator
from .instrument import (
    NULL_INSTRUMENTATION,
    Instrumentation,
    get_instrumentation,
    instrumented,
    set_instrumentation,
)
from .log import DEBUG, ERROR, INFO, OFF, WARNING, StructuredLogger, parse_level
from .metrics import (
    HISTOGRAM_SAMPLE_CAP,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    format_key,
)
from .sinks import NULL_SINK, JsonlSink, MemorySink, TraceSink, read_jsonl
from .tracing import NULL_SPAN, NullSpan, Span

__all__ = [
    "AttributionReport",
    "CAUSES",
    "ClockOffsetEstimator",
    "DEBUG",
    "ERROR",
    "HISTOGRAM_SAMPLE_CAP",
    "INFO",
    "Counter",
    "MissAttribution",
    "TraceDiff",
    "attribute_misses",
    "diff_traces",
    "render_attribution",
    "render_diff",
    "render_timeline",
    "trace_oracle",
    "Gauge",
    "Histogram",
    "Instrumentation",
    "JsonlSink",
    "MemorySink",
    "MetricsRegistry",
    "NULL_INSTRUMENTATION",
    "NULL_SINK",
    "NULL_SPAN",
    "NullSpan",
    "OFF",
    "Span",
    "StructuredLogger",
    "TraceSink",
    "WARNING",
    "format_key",
    "get_instrumentation",
    "instrumented",
    "parse_level",
    "read_jsonl",
    "set_instrumentation",
]
