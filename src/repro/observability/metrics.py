"""Zero-dependency metrics primitives: counters, gauges, histograms.

A :class:`MetricsRegistry` hands out named instruments, optionally
distinguished by labels (``registry.counter("phases", scheduler="rtsads")``).
Instruments are cached, so repeated lookups in a hot loop return the same
object; call sites that care about the lookup cost should hold the instrument
directly.  ``snapshot()`` renders everything into plain dicts (JSON-ready)
and ``reset()`` zeroes values in place, keeping previously handed-out
instrument references live.

Everything here is synchronous and unlocked: the simulator is single
threaded, and the registry mirrors that.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

#: Histograms keep exact count/total/min/max forever but cap the stored
#: sample list, so a million observations cannot balloon memory.  The first
#: ``HISTOGRAM_SAMPLE_CAP`` observations are kept verbatim for quantiles.
HISTOGRAM_SAMPLE_CAP = 1024

MetricKey = Tuple[str, Tuple[Tuple[str, str], ...]]


def _key(name: str, labels: Dict[str, object]) -> MetricKey:
    if not name:
        raise ValueError("metric name must be non-empty")
    if "name" in labels:
        # Would collide with the registry methods' positional parameter at
        # every call site; insist on a more specific label key up front.
        raise ValueError("'name' is reserved; use a more specific label key")
    return name, tuple(sorted((k, str(v)) for k, v in labels.items()))


def format_key(key: MetricKey) -> str:
    """Render ``(name, labels)`` as ``name{k=v,...}`` (no braces unlabeled)."""
    name, labels = key
    if not labels:
        return name
    inner = ",".join(f"{k}={v}" for k, v in labels)
    return f"{name}{{{inner}}}"


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("key", "value")

    def __init__(self, key: MetricKey) -> None:
        self.key = key
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only increase; use a gauge instead")
        self.value += amount

    def reset(self) -> None:
        self.value = 0.0


class Gauge:
    """A value that can move both ways (queue depth, clock position...)."""

    __slots__ = ("key", "value")

    def __init__(self, key: MetricKey) -> None:
        self.key = key
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount

    def reset(self) -> None:
        self.value = 0.0


class Histogram:
    """Distribution summary: exact count/total/min/max plus a capped sample.

    Quantiles are computed from the first :data:`HISTOGRAM_SAMPLE_CAP`
    observations — deterministic (no reservoir randomness) and accurate for
    the phase-granular series this layer records.
    """

    __slots__ = ("key", "count", "total", "min", "max", "_samples")

    def __init__(self, key: MetricKey) -> None:
        self.key = key
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self._samples: List[float] = []

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        if len(self._samples) < HISTOGRAM_SAMPLE_CAP:
            self._samples.append(value)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Nearest-rank quantile over the stored sample (0 when empty)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        if not self._samples:
            return 0.0
        ordered = sorted(self._samples)
        rank = min(len(ordered) - 1, int(q * len(ordered)))
        return ordered[rank]

    def reset(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min = None
        self.max = None
        self._samples.clear()

    def summary(self) -> Dict[str, float]:
        return {
            "count": self.count,
            "total": self.total,
            "mean": self.mean,
            "min": self.min if self.min is not None else 0.0,
            "max": self.max if self.max is not None else 0.0,
            "p50": self.quantile(0.5),
            "p95": self.quantile(0.95),
        }


class MetricsRegistry:
    """Factory and store for every instrument of one instrumentation scope."""

    def __init__(self) -> None:
        self._counters: Dict[MetricKey, Counter] = {}
        self._gauges: Dict[MetricKey, Gauge] = {}
        self._histograms: Dict[MetricKey, Histogram] = {}

    def counter(self, name: str, **labels: object) -> Counter:
        key = _key(name, labels)
        instrument = self._counters.get(key)
        if instrument is None:
            instrument = self._counters[key] = Counter(key)
        return instrument

    def gauge(self, name: str, **labels: object) -> Gauge:
        key = _key(name, labels)
        instrument = self._gauges.get(key)
        if instrument is None:
            instrument = self._gauges[key] = Gauge(key)
        return instrument

    def histogram(self, name: str, **labels: object) -> Histogram:
        key = _key(name, labels)
        instrument = self._histograms.get(key)
        if instrument is None:
            instrument = self._histograms[key] = Histogram(key)
        return instrument

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """JSON-ready view: ``{"counters": {...}, "gauges": {...}, ...}``."""
        return {
            "counters": {
                format_key(k): c.value for k, c in sorted(self._counters.items())
            },
            "gauges": {
                format_key(k): g.value for k, g in sorted(self._gauges.items())
            },
            "histograms": {
                format_key(k): h.summary()
                for k, h in sorted(self._histograms.items())
            },
        }

    def reset(self) -> None:
        """Zero every instrument in place (handed-out references stay live)."""
        for counter in self._counters.values():
            counter.reset()
        for gauge in self._gauges.values():
            gauge.reset()
        for histogram in self._histograms.values():
            histogram.reset()

    def __len__(self) -> int:
        return len(self._counters) + len(self._gauges) + len(self._histograms)
