"""Span timers: profile a section and emit one ``span`` trace event.

Usage::

    with obs.span("schedule_phase", scheduler="rtsads") as span:
        result = run_phase(...)
        span.set(quantum=result.quantum, vertices=result.stats.vertices_generated)

On exit the span emits ``{"event": "span", "name": ..., "wall_s": ...}``
plus every attribute to the instrumentation's sink, and observes the wall
duration in the ``span_seconds{name=...}`` histogram.  When instrumentation
is disabled a shared :class:`NullSpan` is returned instead, so the guarded
path costs one attribute check and nothing else.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, Dict

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .instrument import Instrumentation


class NullSpan:
    """Inert span: every operation is a no-op (disabled instrumentation)."""

    __slots__ = ()

    def set(self, **attrs: object) -> None:
        pass

    def __enter__(self) -> "NullSpan":
        return self

    def __exit__(self, *exc_info: object) -> None:
        pass


#: Shared inert span handed out whenever instrumentation is off.
NULL_SPAN = NullSpan()


class Span:
    """A timed section; emits one ``span`` event when it closes."""

    __slots__ = ("name", "attrs", "_obs", "_started", "wall_s")

    def __init__(
        self, obs: "Instrumentation", name: str, attrs: Dict[str, object]
    ) -> None:
        self.name = name
        self.attrs = attrs
        self._obs = obs
        self._started = 0.0
        self.wall_s = 0.0

    def set(self, **attrs: object) -> None:
        """Attach attributes to the span (merged into the emitted event)."""
        self.attrs.update(attrs)

    def __enter__(self) -> "Span":
        self._started = time.perf_counter()
        return self

    def __exit__(self, exc_type: object, *exc_info: object) -> None:
        self.wall_s = time.perf_counter() - self._started
        event: Dict[str, object] = {"event": "span", "name": self.name}
        event.update(self._obs.context)
        event.update(self.attrs)
        event["wall_s"] = round(self.wall_s, 9)
        if exc_type is not None:
            event["error"] = getattr(exc_type, "__name__", str(exc_type))
        self._obs.sink.emit(event)
        self._obs.metrics.histogram("span_seconds", span=self.name).observe(
            self.wall_s
        )
