"""Trace sinks: where structured events go.

Every event is one flat-ish JSON object with an ``event`` kind field; the
JSONL sink writes one object per line.  The kinds the instrumented layers
emit (see EXPERIMENTS.md appendix for one full example of each):

``run_start``
    A simulation run begins: ``scheduler``, ``workers``, ``tasks``.
``run_end``
    A run finished: ``scheduler``, ``makespan``, ``deadline_hits``,
    ``tasks``, ``phases``, ``events_dispatched``.
``span``
    A timed section closed: ``name``, ``wall_s`` plus arbitrary
    attributes.  The per-phase span (``name="phase"``) carries the search
    internals: ``scheduler``, ``phase``, ``quantum``, ``time_used``,
    ``batch_size``, ``scheduled``, ``vertices_generated``, ``expansions``,
    ``backtracks``, ``feasibility_rejections``, ``prefilter_rejected``,
    ``tasks_pruned``, ``dead_end``, ``complete``, ``max_depth``.
``task``
    One task lifecycle transition: ``task_id``, ``transition`` (``arrived``
    | ``delivered`` | ``started`` | ``finished`` | ``expired`` |
    ``failed``), virtual time ``t``, and ``processor`` where known.
``lock_wait``
    A lock request queued instead of being granted: ``resource``,
    ``owner``, ``mode``.
``cell``
    One experiment cell completed: scheduler, config axes, aggregate
    metrics, and the cell's counter deltas.

Sinks are deliberately dumb — no buffering policy beyond the file object's
own, no threading — because the simulator is single threaded and a trace
that lies about ordering is worse than none.
"""

from __future__ import annotations

import io
import json
from pathlib import Path
from typing import Dict, List, Optional, TextIO


class TraceSink:
    """Base sink: swallows everything (the off-by-default behaviour)."""

    def emit(self, event: Dict[str, object]) -> None:  # pragma: no cover
        pass

    def close(self) -> None:  # pragma: no cover
        pass


#: Shared no-op sink; safe because it carries no state.
NULL_SINK = TraceSink()


class MemorySink(TraceSink):
    """Keeps events in a list — the test and debugging sink."""

    def __init__(self) -> None:
        self.events: List[Dict[str, object]] = []

    def emit(self, event: Dict[str, object]) -> None:
        self.events.append(event)

    def of_kind(self, kind: str) -> List[Dict[str, object]]:
        return [e for e in self.events if e.get("event") == kind]

    def clear(self) -> None:
        self.events.clear()

    def __len__(self) -> int:
        return len(self.events)


class JsonlSink(TraceSink):
    """Writes one JSON object per line to a path or an open text stream.

    Crash-safe by policy: every emit flushes the line to the OS, so a
    process killed mid-run (a fail-stop worker, an interrupted sweep)
    leaves a fully parseable trace of everything up to the kill — the
    worst case is one torn final line, which :func:`read_jsonl` reports
    rather than silently truncating.  Trace events are rare relative to
    scheduling work (quantum granularity, not instruction granularity),
    so the per-line flush is noise next to the JSON encode itself.
    ``close`` is idempotent and safe to call from ``finally`` blocks that
    may run twice.
    """

    def __init__(self, target: "str | Path | TextIO") -> None:
        if isinstance(target, (str, Path)):
            path = Path(target)
            path.parent.mkdir(parents=True, exist_ok=True)
            self._file: TextIO = path.open("w", encoding="utf-8")
            self._owns_file = True
            self.path: Optional[Path] = path
        else:
            self._file = target
            self._owns_file = False
            self.path = None
        self.events_written = 0

    def emit(self, event: Dict[str, object]) -> None:
        json.dump(event, self._file, separators=(",", ":"), sort_keys=True)
        self._file.write("\n")
        self._file.flush()
        self.events_written += 1

    def close(self) -> None:
        if self._owns_file and not self._file.closed:
            self._file.close()


def read_jsonl(path: "str | Path") -> List[Dict[str, object]]:
    """Parse a JSONL trace back into event dicts (validation helper)."""
    events = []
    with io.open(path, "r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                event = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(
                    f"{path}:{line_number}: invalid JSONL ({exc})"
                ) from exc
            if not isinstance(event, dict) or "event" not in event:
                raise ValueError(
                    f"{path}:{line_number}: trace events must be objects "
                    "with an 'event' kind"
                )
            events.append(event)
    return events
