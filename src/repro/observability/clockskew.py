"""Per-peer clock-offset estimation for merging distributed traces.

Workers stamp their trace events with their *own* monotonic clock
(``time.monotonic()`` is process-local: two processes' readings share no
epoch), so the master must learn, per worker, how to translate a worker
timestamp into its own clock before the events can merge into one
timeline.

The estimator uses the classic one-way minimum filter.  Every message a
worker sends carries its send time ``s`` on the worker clock; the master
records its receive time ``r`` on the master clock and forms the sample
``r - s = offset + latency``, where ``offset`` is the true (constant)
clock offset and ``latency >= 0`` is that message's one-way network +
queueing delay.  The *minimum* sample over a run is the offset plus the
smallest latency any message experienced — on localhost (and any
uncongested LAN) a bound tight to well under a millisecond, far below
the quantum granularity the traces measure.  Corrected master time for a
worker timestamp ``w`` is then simply ``w + offset_estimate``.

The estimate only improves (monotonically non-increasing), so events
corrected early in a run may carry slightly more latency bias than late
ones; :meth:`ClockOffsetEstimator.offset` is cheap enough to re-apply at
merge time, which is what the cluster master does — events are corrected
when they arrive, with the then-best estimate.
"""

from __future__ import annotations

from typing import Dict, Optional


class ClockOffsetEstimator:
    """Min-filter offset estimation from one-way timestamped messages.

    One instance per trace-merging process (the cluster master); peers are
    keyed by an integer id (the worker index).  Not thread-safe — the
    master's selector loop is single-threaded, and the estimator mirrors
    that.
    """

    def __init__(self) -> None:
        self._offsets: Dict[int, float] = {}
        self._samples: Dict[int, int] = {}

    def observe(
        self, peer: int, sent_mono: float, received_mono: float
    ) -> float:
        """Fold one ``(send, receive)`` timestamp pair into the estimate.

        Returns the updated offset estimate for ``peer``.  Samples with a
        zero/absent send stamp should be filtered by the caller; a sample
        can only tighten (never loosen) the estimate.
        """
        sample = received_mono - sent_mono
        current = self._offsets.get(peer)
        if current is None or sample < current:
            self._offsets[peer] = sample
        self._samples[peer] = self._samples.get(peer, 0) + 1
        return self._offsets[peer]

    def offset(self, peer: int) -> Optional[float]:
        """Best known offset for ``peer`` (None before any sample)."""
        return self._offsets.get(peer)

    def samples(self, peer: int) -> int:
        """How many timestamp pairs ``peer`` has contributed."""
        return self._samples.get(peer, 0)

    def correct(self, peer: int, peer_mono: float) -> Optional[float]:
        """Translate a ``peer`` clock reading onto the local clock.

        Returns ``None`` when no offset is known yet (the caller decides
        whether to drop, defer, or pass the event through uncorrected).
        """
        offset = self._offsets.get(peer)
        if offset is None:
            return None
        return peer_mono + offset

    def known_peers(self) -> Dict[int, float]:
        """Snapshot of every peer's current offset estimate."""
        return dict(self._offsets)
