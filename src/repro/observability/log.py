"""Structured logging with bound context, on stdlib only.

A :class:`StructuredLogger` writes one line per record::

    12:03:44 INFO repro.runner repetition done scheduler=rtsads seed=1998 hit=91.2

``bind(**context)`` returns a child logger whose context fields are appended
to every record — the run/phase binding the experiment harness uses so a
progress line always says *which* cell it belongs to.  Levels follow the
stdlib numeric convention (DEBUG=10 ... ERROR=40, OFF above ERROR); records
below the logger's level are dropped before any string is built.
"""

from __future__ import annotations

import sys
import time
from typing import Dict, Optional, TextIO

DEBUG = 10
INFO = 20
WARNING = 30
ERROR = 40
OFF = 100

_LEVEL_NAMES = {DEBUG: "DEBUG", INFO: "INFO", WARNING: "WARNING", ERROR: "ERROR"}
_NAMES_TO_LEVELS = {name: level for level, name in _LEVEL_NAMES.items()}
_NAMES_TO_LEVELS["OFF"] = OFF


def parse_level(level: "int | str") -> int:
    """Accept either a numeric level or a name like ``"info"``."""
    if isinstance(level, int):
        return level
    try:
        return _NAMES_TO_LEVELS[level.upper()]
    except KeyError:
        raise ValueError(
            f"unknown log level {level!r}; choose from "
            f"{sorted(_NAMES_TO_LEVELS)}"
        ) from None


def _format_value(value: object) -> str:
    if isinstance(value, float):
        return f"{value:g}"
    text = str(value)
    if " " in text or "=" in text:
        return repr(text)
    return text


class StructuredLogger:
    """Leveled key=value logger; children share the parent's stream + level.

    The level lives in a one-element mutable cell shared by the whole
    ``bind`` tree, so raising verbosity on the root (``set_level``) takes
    effect on every bound child the harness has already created.
    """

    __slots__ = ("name", "context", "_stream", "_level_cell")

    def __init__(
        self,
        name: str = "repro",
        level: "int | str" = WARNING,
        stream: Optional[TextIO] = None,
        context: Optional[Dict[str, object]] = None,
        _level_cell: Optional[list] = None,
    ) -> None:
        self.name = name
        self.context = dict(context or {})
        self._stream = stream
        self._level_cell = (
            _level_cell if _level_cell is not None else [parse_level(level)]
        )

    @property
    def level(self) -> int:
        return self._level_cell[0]

    def set_level(self, level: "int | str") -> None:
        self._level_cell[0] = parse_level(level)

    @property
    def stream(self) -> TextIO:
        return self._stream if self._stream is not None else sys.stderr

    def bind(self, **context: object) -> "StructuredLogger":
        """Child logger with ``context`` appended to every record."""
        merged = dict(self.context)
        merged.update(context)
        return StructuredLogger(
            name=self.name,
            stream=self._stream,
            context=merged,
            _level_cell=self._level_cell,
        )

    def is_enabled_for(self, level: int) -> bool:
        return level >= self._level_cell[0]

    def log(self, level: int, message: str, **fields: object) -> None:
        if level < self._level_cell[0]:
            return
        parts = [
            time.strftime("%H:%M:%S"),
            _LEVEL_NAMES.get(level, str(level)),
            self.name,
            message,
        ]
        for key, value in {**self.context, **fields}.items():
            parts.append(f"{key}={_format_value(value)}")
        self.stream.write(" ".join(parts) + "\n")

    def debug(self, message: str, **fields: object) -> None:
        self.log(DEBUG, message, **fields)

    def info(self, message: str, **fields: object) -> None:
        self.log(INFO, message, **fields)

    def warning(self, message: str, **fields: object) -> None:
        self.log(WARNING, message, **fields)

    def error(self, message: str, **fields: object) -> None:
        self.log(ERROR, message, **fields)
