#!/usr/bin/env python
"""Dead-link checker for the repo's markdown documentation.

Validates every relative markdown link — ``[text](path)``,
``[text](path#anchor)``, and ``[text](#anchor)`` — in the given files:

* the target file must exist (relative to the linking document);
* an anchor must match a heading in the target, using GitHub's slug
  rule (lowercase, punctuation stripped, spaces to dashes).

External links (``http://``, ``https://``, ``mailto:``) are left alone:
offline CI cannot judge them, and flakiness would train people to
ignore the check.

Usage::

    python tools/check_links.py README.md docs/*.md
    python tools/check_links.py            # default: every tracked *.md

Exit status 0 when every link resolves, 1 otherwise.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path
from typing import Iterator, List, Set, Tuple

#: Inline markdown links; deliberately ignores fenced code via LINE_FENCE.
LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$")
FENCE_RE = re.compile(r"^(```|~~~)")
EXTERNAL_PREFIXES = ("http://", "https://", "mailto:")


def github_slug(heading: str) -> str:
    """GitHub's anchor slug for a heading (close enough for our docs)."""
    text = re.sub(r"[`*_]", "", heading.strip()).lower()
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def iter_links(text: str) -> Iterator[str]:
    """Every inline link target outside fenced code blocks."""
    in_fence = False
    for line in text.splitlines():
        if FENCE_RE.match(line.strip()):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        for match in LINK_RE.finditer(line):
            yield match.group(1)


def anchors_of(path: Path) -> Set[str]:
    """All heading anchors a markdown file exposes."""
    slugs: Set[str] = set()
    in_fence = False
    for line in path.read_text(encoding="utf-8").splitlines():
        if FENCE_RE.match(line.strip()):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        match = HEADING_RE.match(line)
        if match:
            slugs.add(github_slug(match.group(1)))
    return slugs


def check_file(path: Path) -> List[Tuple[Path, str, str]]:
    """All broken links in one document as (source, target, reason)."""
    problems = []
    for target in iter_links(path.read_text(encoding="utf-8")):
        if target.startswith(EXTERNAL_PREFIXES):
            continue
        raw, _, anchor = target.partition("#")
        destination = (path.parent / raw).resolve() if raw else path.resolve()
        if not destination.exists():
            problems.append((path, target, "target does not exist"))
            continue
        if anchor and destination.suffix == ".md":
            if github_slug(anchor) not in anchors_of(destination):
                problems.append(
                    (path, target, f"no heading for anchor #{anchor}")
                )
    return problems


def default_documents() -> List[Path]:
    """Every markdown file in the repo root and docs/ tree."""
    root = Path(__file__).resolve().parent.parent
    docs = sorted(root.glob("*.md")) + sorted(root.glob("docs/**/*.md"))
    return docs


def main(argv: List[str]) -> int:
    """CLI entry point; returns the process exit status."""
    documents = [Path(a) for a in argv] if argv else default_documents()
    problems = []
    for document in documents:
        problems.extend(check_file(document))
    for source, target, reason in problems:
        print(f"{source}: broken link '{target}': {reason}")
    if problems:
        print(f"{len(problems)} broken link(s)")
        return 1
    print(f"{len(documents)} document(s) checked, all links resolve")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
