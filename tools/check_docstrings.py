#!/usr/bin/env python
"""Docstring presence checker for the runtime and experiments packages.

A pydocstyle-style structural check without the dependency: every public
module, class, function, and method in the packages below must carry a
docstring.  The bar is deliberately presence-only — the *content* rule
(state units: virtual quanta vs wall seconds; state thread/process
safety where it matters) is enforced by review, but absence is caught
mechanically here and in CI's ``docs`` job.

Usage::

    python tools/check_docstrings.py            # check the default scope
    python tools/check_docstrings.py src/pkg    # check something else

Exit status 0 when every public definition is documented, 1 otherwise
(one ``path:line: message`` per offender on stdout).
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path
from typing import Iterator, List, Tuple

#: Packages whose public API must be fully documented (repo-relative).
DEFAULT_SCOPE = (
    "src/repro/runtime",
    "src/repro/experiments",
    # The search substrate and the kernel registry: the modules the
    # performance docs (docs/PERFORMANCE.md) point readers into.
    "src/repro/core/search.py",
    "src/repro/core/cost.py",
    "src/repro/core/feasibility.py",
    "src/repro/core/kernels.py",
    "src/repro/core/vectorized.py",
)


def is_public(name: str) -> bool:
    """Dunder names count as public (``__init__`` is exempted separately)."""
    return not name.startswith("_") or (
        name.startswith("__") and name.endswith("__")
    )


def iter_missing(tree: ast.Module) -> Iterator[Tuple[int, str]]:
    """Yield ``(lineno, message)`` for every undocumented public definition."""
    if ast.get_docstring(tree) is None:
        yield 1, "module is missing a docstring"
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef):
            if is_public(node.name) and ast.get_docstring(node) is None:
                yield node.lineno, f"class {node.name} is missing a docstring"
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            # __init__ documents itself through its class; private
            # helpers may self-document through their names.
            if node.name == "__init__" or not is_public(node.name):
                continue
            if ast.get_docstring(node) is None:
                yield (
                    node.lineno,
                    f"function {node.name} is missing a docstring",
                )


def check_paths(roots: List[str]) -> List[str]:
    """All violations under ``roots`` as ``path:line: message`` strings."""
    problems = []
    for root in roots:
        base = Path(root)
        files = sorted(base.rglob("*.py")) if base.is_dir() else [base]
        for path in files:
            tree = ast.parse(path.read_text(encoding="utf-8"), str(path))
            for lineno, message in iter_missing(tree):
                problems.append(f"{path}:{lineno}: {message}")
    return problems


def main(argv: List[str]) -> int:
    """CLI entry point; returns the process exit status."""
    roots = argv or list(DEFAULT_SCOPE)
    problems = check_paths(roots)
    for problem in problems:
        print(problem)
    if problems:
        print(f"{len(problems)} public definition(s) missing docstrings")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
