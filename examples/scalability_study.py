"""Mini scalability study: regenerate the shape of the paper's Figure 5.

Sweeps the processor count at fixed replication (30%) and tight deadlines
(SF=1), comparing RT-SADS against D-COLS plus the greedy and myopic
baselines, and prints the table with a bar chart.  This is the CLI's `fig5`
experiment in library form, at a size that runs in seconds.

Every cell dispatches through the execution-backend registry: this config
runs on the simulator (`backend="sim"`, the default), and the identical
sweep runs on the live TCP cluster by building the config with
``.with_backend("cluster")`` — or `--backend cluster` on the CLI.

Run:  python examples/scalability_study.py
"""

from repro.experiments import ExperimentConfig, figure5, run_once
from repro.metrics import comparison_summary


def main() -> None:
    config = ExperimentConfig.quick(num_transactions=150, runs=2)
    result = figure5(
        config,
        processors=(2, 4, 6, 8, 10),
        schedulers=("rtsads", "dcols", "greedy_edf", "myopic"),
    )
    print(result.render())

    summary = comparison_summary(result.figure, "RT-SADS", "D-COLS")
    print(
        f"\nRT-SADS vs D-COLS: max advantage "
        f"{summary['max_advantage']:.1f} points, advantage at m=10 "
        f"{summary['final_advantage']:.1f} points"
    )
    print(
        f"end-to-end scalability gain: RT-SADS "
        f"{summary['RT-SADS_gain']:+.1f} points, D-COLS "
        f"{summary['D-COLS_gain']:+.1f} points"
    )

    # The mechanism behind the gap: dead-end rates per representation.
    print("\nsearch behaviour at m=10:")
    for name in ("rtsads", "dcols"):
        cell = result.cells[(name, 10)]
        print(
            f"  {cell.scheduler_name:>10s}: dead-end rate "
            f"{100 * cell.mean_dead_end_rate:5.1f}%, mean schedule depth "
            f"{cell.mean_depth:5.1f}, processors touched/phase "
            f"{cell.mean_processors_touched:4.1f}"
        )

    # One repetition of the m=10 cell through the unified runner: the
    # RunReport printed here has the exact same shape a live-cluster run
    # of this cell would produce.
    report = run_once(
        config.with_processors(10), "rtsads", config.base_seed
    )
    print(f"\none {report.backend}-backend repetition of the m=10 cell:")
    print(report.render())


if __name__ == "__main__":
    main()
