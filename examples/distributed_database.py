"""The paper's application: real-time transactions over a distributed DB.

Reproduces the Section-5 setup end to end: a relational database hash-
partitioned into sub-databases with disjoint domains, replicated across
processor-local memories, probed by read-only transactions whose worst-case
costs come from the host's global index.  RT-SADS and D-COLS schedule the
same transaction burst and their deadline compliance is compared.

Run:  python examples/distributed_database.py
"""

import random

from repro import DCOLS, RTSADS, UniformCommunicationModel, simulate
from repro.database import DatabaseConfig, DistributedDatabase
from repro.metrics import hit_ratio_by_tag
from repro.workload import (
    TransactionWorkloadConfig,
    TransactionWorkloadGenerator,
)

NUM_PROCESSORS = 6
REPLICATION_RATE = 0.3
REMOTE_COST = 80.0


def main() -> None:
    # Build the database: 10 sub-databases of 200 records x 10 attributes,
    # replicated so each partition lives on ~30% of the processors.
    database = DistributedDatabase.build(
        config=DatabaseConfig(
            num_subdatabases=10,
            records_per_subdb=200,
            num_attributes=10,
            domain_size=20,
        ),
        num_processors=NUM_PROCESSORS,
        replication_rate=REPLICATION_RATE,
        rng=random.Random(1998),
    )
    print(
        f"database: {database.config.total_records} records in "
        f"{database.config.num_subdatabases} sub-databases; "
        f"{len(database.index)} distinct key values indexed "
        f"(mean frequency {database.index.mean_frequency():.1f})"
    )
    for processor in range(NUM_PROCESSORS):
        local = sorted(database.placement.contents_of(processor))
        print(f"  P{processor} local memory holds sub-databases {local}")

    # A bursty transaction workload with tight (SF=1) deadlines.
    generator = TransactionWorkloadGenerator(
        database=database,
        config=TransactionWorkloadConfig(
            num_transactions=250, slack_factor=1.0, seed=1998
        ),
    )
    tasks, transactions = generator.generate()
    scans = sum(1 for t in tasks if t.tag == "scan")
    print(
        f"\nworkload: {len(tasks)} transactions "
        f"({len(tasks) - scans} indexed probes, {scans} full scans), "
        f"deadlines = 10 x estimated cost"
    )

    # Sanity-check the cost estimator against real execution on one node.
    executor = database.global_executor()
    sample = transactions[0]
    outcome = executor.execute(sample)
    print(
        f"example transaction {sample.txn_id}: estimated "
        f"{database.estimate_cost(sample):.0f}, actually checked "
        f"{outcome.tuples_checked} tuples, {outcome.match_count} matches"
    )

    # Schedule the same burst with both algorithms.
    comm = UniformCommunicationModel(remote_cost=REMOTE_COST)
    print()
    for scheduler in (
        RTSADS(comm, per_vertex_cost=0.02),
        DCOLS(comm, per_vertex_cost=0.02),
    ):
        result = simulate(scheduler, list(tasks), num_workers=NUM_PROCESSORS)
        by_tag = hit_ratio_by_tag(result.trace)
        tag_text = ", ".join(
            f"{tag}: {100 * ratio:.1f}%" for tag, ratio in sorted(by_tag.items())
        )
        print(result.summary())
        print(f"  by transaction kind: {tag_text}")


if __name__ == "__main__":
    main()
