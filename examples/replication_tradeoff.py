"""Replication-rate trade-off: the shape of the paper's Figure 6.

Sweeps the database replication rate at a fixed 10-processor machine and
tight deadlines, showing how D-COLS's compliance depends on data being
replicated everywhere while RT-SADS stays high by routing around affinity
constraints — and what each run's statistics look like at the paper's 99%
confidence level.

Run:  python examples/replication_tradeoff.py
"""

from repro.experiments import ExperimentConfig, figure6
from repro.metrics import difference_of_means


def main() -> None:
    config = ExperimentConfig.quick(num_transactions=150, runs=3)
    rates = (0.1, 0.3, 0.5, 0.7, 1.0)
    result = figure6(config, replication_rates=rates)
    print(result.render())

    print("\nstatistical check (Welch two-tailed difference of means):")
    for rate in rates:
        test = difference_of_means(
            result.cells[("rtsads", rate)].hit_percents,
            result.cells[("dcols", rate)].hit_percents,
            significance_level=config.significance_level,
        )
        verdict = "significant" if test.significant else "not significant"
        print(
            f"  R={rate:.1f}: RT-SADS - D-COLS = "
            f"{test.mean_difference:+6.2f} points "
            f"(t={test.t_statistic:6.2f}, p={test.p_value:.4f}, {verdict})"
        )


if __name__ == "__main__":
    main()
