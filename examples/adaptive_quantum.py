"""How the self-adjusting quantum reacts to load, slack, and arrivals.

Runs RT-SADS under a staggered (multi-burst) arrival pattern and prints the
quantum chosen for each phase next to the signals that drove it — the
paper's Figure-3 criterion in action — then compares compliance against
fixed-quantum ablations.

Run:  python examples/adaptive_quantum.py
"""

from repro import RTSADS, UniformCommunicationModel, simulate
from repro.core import FixedQuantum
from repro.workload import (
    BatchedArrival,
    SyntheticWorkloadConfig,
    SyntheticWorkloadGenerator,
)


def build_workload():
    """Three bursts of 30 tasks, 400 time units apart."""
    return SyntheticWorkloadGenerator(
        SyntheticWorkloadConfig(
            num_tasks=90,
            num_processors=4,
            affinity_probability=0.5,
            min_processing_time=10.0,
            max_processing_time=60.0,
            slack_factor=2.0,
            seed=7,
        ),
        arrivals=BatchedArrival(num_batches=3, interval=400.0),
    ).generate()


def main() -> None:
    comm = UniformCommunicationModel(remote_cost=40.0)

    scheduler = RTSADS(comm, per_vertex_cost=0.05)
    result = simulate(scheduler, build_workload(), num_workers=4)
    print(result.summary())
    print("\nphase-by-phase quantum adaptation (first 12 phases):")
    print("  j    t_s      Q_s    used  batch  scheduled")
    for phase in result.phases[:12]:
        print(
            f"  {phase.index:<3d} {phase.start:8.2f} {phase.quantum:8.2f} "
            f"{phase.time_used:7.2f} {phase.batch_size:5d} "
            f"{phase.scheduled:6d}"
        )

    print("\nquantum policy comparison (same workload):")
    policies = [
        ("self-adjusting (paper)", None),
        ("fixed tiny (2)", FixedQuantum(2.0)),
        ("fixed huge (500)", FixedQuantum(500.0)),
    ]
    for label, policy in policies:
        scheduler = RTSADS(
            comm, per_vertex_cost=0.05, quantum_policy=policy
        ) if policy else RTSADS(comm, per_vertex_cost=0.05)
        result = simulate(scheduler, build_workload(), num_workers=4)
        print(
            f"  {label:<24s} hit ratio "
            f"{100 * result.hit_ratio:5.1f}%  ({len(result.phases)} phases)"
        )


if __name__ == "__main__":
    main()
