"""Beyond the paper: read/write transactions and resource reclaiming.

The paper restricts its evaluation to read-only transactions and worst-case
execution.  This example lifts both restrictions: a mixed read/write burst
runs against the distributed database (writes execute at their partition's
primary copy under exclusive locks, maintaining the local and global
indexes), and workers finish early when the real data lets them — the
runtime reclaims the slack automatically.

Run:  python examples/readwrite_transactions.py
"""

import random

from repro import RTSADS, UniformCommunicationModel, simulate
from repro.database import DatabaseConfig, DistributedDatabase, LockManager
from repro.metrics import hit_ratio_by_tag
from repro.simulator import FirstMatchDatabaseExecution
from repro.workload import (
    TransactionWorkloadConfig,
    TransactionWorkloadGenerator,
)

NUM_PROCESSORS = 6


def main() -> None:
    database = DistributedDatabase.build(
        config=DatabaseConfig(
            num_subdatabases=10, records_per_subdb=200, domain_size=20
        ),
        num_processors=NUM_PROCESSORS,
        replication_rate=0.5,
        rng=random.Random(77),
    )
    generator = TransactionWorkloadGenerator(
        database=database,
        config=TransactionWorkloadConfig(
            num_transactions=200,
            slack_factor=1.5,
            write_fraction=0.25,
            seed=77,
        ),
    )
    tasks, transactions = generator.generate()
    writes = [t for t in transactions if t.is_write]
    print(
        f"workload: {len(transactions)} transactions, "
        f"{len(writes)} of them updates (pinned to primary copies)"
    )

    # Demonstrate the concurrency-control substrate directly: execute one
    # update under the lock manager and watch the global index follow.
    lock_manager = LockManager()
    executor = database.global_executor()
    executor.lock_manager = lock_manager
    executor.global_index = database.index
    sample = writes[0]
    before = database.index.total_indexed_tuples()
    outcome = executor.execute(sample)
    print(
        f"update {sample.txn_id}: checked {outcome.tuples_checked} tuples, "
        f"rewrote {outcome.rows_changed} rows "
        f"(global index still covers {database.index.total_indexed_tuples()} "
        f"tuples, was {before}); locks drained: "
        f"{not lock_manager.locked_resources()}"
    )

    comm = UniformCommunicationModel(remote_cost=80.0)
    print("\nworst-case execution vs first-match early exit:")
    for label, model in (
        ("worst-case", None),
        ("first-match early exit",
         FirstMatchDatabaseExecution(database, transactions)),
    ):
        result = simulate(
            RTSADS(comm, per_vertex_cost=0.02),
            list(tasks),
            num_workers=NUM_PROCESSORS,
            execution_model=model,
        )
        by_tag = hit_ratio_by_tag(result.trace)
        tag_text = ", ".join(
            f"{tag} {100 * ratio:.0f}%" for tag, ratio in sorted(by_tag.items())
        )
        print(
            f"  {label:<22s} hits {100 * result.hit_ratio:5.1f}%  "
            f"makespan {result.makespan:7.1f}  reclaimed "
            f"{result.trace.total_reclaimed_time():8.1f}  ({tag_text})"
        )


if __name__ == "__main__":
    main()
