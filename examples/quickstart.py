"""Quickstart: schedule a bursty real-time workload with RT-SADS.

Builds a small synthetic task set, runs it through the on-line runtime on a
4-worker distributed-memory machine, and prints the compliance summary plus
a per-processor Gantt sketch.  Every run — simulated or live — comes back
as the same ``RunReport``, so all the accounting below reads straight off
the report.

Run:  python examples/quickstart.py
"""

from repro import RTSADS, UniformCommunicationModel, simulate
from repro.metrics import format_gantt
from repro.workload import SyntheticWorkloadConfig, SyntheticWorkloadGenerator


def main() -> None:
    # 1. A workload: 60 aperiodic tasks arriving at once, each with data
    #    resident on ~40% of the machine's nodes and a deadline of twice
    #    ten times its processing time (slack factor 2).
    workload = SyntheticWorkloadGenerator(
        SyntheticWorkloadConfig(
            num_tasks=60,
            num_processors=4,
            affinity_probability=0.4,
            min_processing_time=5.0,
            max_processing_time=40.0,
            slack_factor=2.0,
            seed=42,
        )
    ).generate()

    # 2. The machine's communication model: executing a task away from its
    #    data costs a constant 30 time units (wormhole routing).
    comm = UniformCommunicationModel(remote_cost=30.0)

    # 3. RT-SADS with the paper's defaults: assignment-oriented search,
    #    self-adjusting quantum, load-balancing cost function.
    scheduler = RTSADS(comm, per_vertex_cost=0.02)

    # 4. Run the on-line simulation: a dedicated host processor schedules
    #    while 4 workers execute.  The result is a RunReport — the same
    #    schema the live TCP cluster backend produces.
    report = simulate(scheduler, workload, num_workers=4)

    print(report.summary())
    print(
        f"hits={report.deadline_hits}  late={report.completed_late}  "
        f"expired={report.expired}  (theorem violations: "
        f"{report.guaranteed_violations})"
    )

    # The simulator's full execution trace rides along as a backend extra.
    print("\nPer-processor execution timeline (# busy, . idle):")
    print(format_gantt(report.trace.gantt(), width=64))

    print("\nScheduling phases:")
    for phase in report.phases[:6]:
        print(
            f"  phase {phase.index}: Q_s={phase.quantum:.2f} "
            f"used={phase.time_used:.2f} scheduled={phase.scheduled} "
            f"batch={phase.batch_size}"
        )


if __name__ == "__main__":
    main()
